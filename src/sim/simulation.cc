#include "src/sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace espk {

Simulation::EventHandle Simulation::ScheduleAt(SimTime at, Callback cb) {
  assert(cb && "scheduling a null callback");
  Event ev;
  ev.time = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  EventHandle handle{ev.id};
  callbacks_.emplace(ev.id, std::move(cb));
  queue_.push(ev);
  return handle;
}

Simulation::EventHandle Simulation::ScheduleAfter(SimDuration delay,
                                                  Callback cb) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

bool Simulation::Cancel(EventHandle handle) {
  // Erasing the map entry destroys the callback (and any state it captured)
  // right now; the queued stub is skipped when it eventually pops.
  return handle.valid() && callbacks_.erase(handle.id) > 0;
}

bool Simulation::RunOne() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      continue;  // Cancelled: only the stub was left behind.
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    assert(ev.time >= now_ && "event queue went backwards");
    now_ = ev.time;
    ++events_processed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (RunOne()) {
  }
}

void Simulation::RunUntil(SimTime t) {
  assert(t >= now_ && "cannot run the clock backwards");
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (callbacks_.count(top.id) == 0) {
      queue_.pop();  // Cancelled stub.
      continue;
    }
    if (top.time > t) {
      break;
    }
    RunOne();
  }
  now_ = t;
}

void Simulation::RunFor(SimDuration d) { RunUntil(now_ + d); }

PeriodicTask::PeriodicTask(Simulation* sim, SimDuration period,
                           TickCallback cb)
    : sim_(sim), period_(period), cb_(std::move(cb)) {
  assert(period > 0 && "periodic task needs positive period");
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start(bool fire_immediately) {
  if (running_) {
    return;
  }
  running_ = true;
  Arm(fire_immediately ? 0 : period_);
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = Simulation::EventHandle{};
}

void PeriodicTask::Arm(SimDuration delay) {
  pending_ = sim_->ScheduleAfter(delay, [this] {
    if (!running_) {
      return;
    }
    cb_(sim_->now());
    if (running_) {  // The callback may have called Stop().
      Arm(period_);
    }
  });
}

void WaitQueue::Wait(Simulation::Callback resume) {
  waiters_.push_back(std::move(resume));
}

void WaitQueue::NotifyOne() {
  if (waiters_.empty()) {
    return;
  }
  auto resume = std::move(waiters_.front());
  waiters_.erase(waiters_.begin());
  sim_->ScheduleAfter(0, std::move(resume));
}

void WaitQueue::NotifyAll() {
  std::vector<Simulation::Callback> all = std::move(waiters_);
  waiters_.clear();
  for (auto& resume : all) {
    sim_->ScheduleAfter(0, std::move(resume));
  }
}

}  // namespace espk
