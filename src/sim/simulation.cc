#include "src/sim/simulation.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

namespace espk {

Simulation::EventHandle Simulation::ScheduleAt(SimTime at, Callback cb) {
  assert(cb && "scheduling a null callback");
  TimerEntry ev;
  ev.time = std::max(at, now_);
  ev.seq = next_seq_++;
  ev.id = next_id_++;
  EventHandle handle{ev.id};
  callbacks_.Insert(ev.id, std::move(cb));
  if (engine_ == QueueEngine::kTimerWheel) {
    wheel_.Schedule(ev);
  } else {
    queue_.push(ev);
  }
  return handle;
}

Simulation::EventHandle Simulation::ScheduleAfter(SimDuration delay,
                                                  Callback cb) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(cb));
}

bool Simulation::Cancel(EventHandle handle) {
  // Erasing the table entry destroys the callback (and any state it
  // captured) right now; the queued stub is skipped when it eventually pops.
  return handle.valid() && callbacks_.Erase(handle.id);
}

bool Simulation::PopNext(SimTime limit, TimerEntry* out) {
  if (engine_ == QueueEngine::kTimerWheel) {
    return wheel_.PopEarliest(limit, out);
  }
  if (queue_.empty() || queue_.top().time > limit) {
    return false;
  }
  *out = queue_.top();
  queue_.pop();
  return true;
}

bool Simulation::RunOne() {
  TimerEntry ev;
  while (PopNext(std::numeric_limits<SimTime>::max(), &ev)) {
    Callback cb;
    if (!callbacks_.Take(ev.id, &cb)) {
      continue;  // Cancelled: only the stub was left behind.
    }
    assert(ev.time >= now_ && "event queue went backwards");
    now_ = ev.time;
    ++events_processed_;
    cb();
    return true;
  }
  return false;
}

void Simulation::Run() {
  while (RunOne()) {
  }
}

void Simulation::RunUntil(SimTime t) {
  assert(t >= now_ && "cannot run the clock backwards");
  TimerEntry ev;
  while (PopNext(t, &ev)) {
    Callback cb;
    if (!callbacks_.Take(ev.id, &cb)) {
      continue;  // Cancelled stub.
    }
    assert(ev.time >= now_ && "event queue went backwards");
    now_ = ev.time;
    ++events_processed_;
    cb();
  }
  now_ = t;
}

void Simulation::RunFor(SimDuration d) { RunUntil(now_ + d); }

SimTime Simulation::next_pending_time() {
  if (engine_ == QueueEngine::kTimerWheel) {
    TimerEntry e;
    return wheel_.PeekEarliest(&e) ? e.time : kNoPendingEvent;
  }
  return queue_.empty() ? kNoPendingEvent : queue_.top().time;
}

PeriodicTask::PeriodicTask(Simulation* sim, SimDuration period,
                           TickCallback cb)
    : sim_(sim), period_(period), cb_(std::move(cb)) {
  assert(period > 0 && "periodic task needs positive period");
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start(bool fire_immediately) {
  if (running_) {
    return;
  }
  running_ = true;
  Arm(fire_immediately ? 0 : period_);
}

void PeriodicTask::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = Simulation::EventHandle{};
}

void PeriodicTask::Arm(SimDuration delay) {
  pending_ = sim_->ScheduleAfter(delay, [this] {
    if (!running_) {
      return;
    }
    cb_(sim_->now());
    if (running_) {  // The callback may have called Stop().
      Arm(period_);
    }
  });
}

void WaitQueue::Wait(Simulation::Callback resume) {
  waiters_.push_back(std::move(resume));
}

void WaitQueue::NotifyOne() {
  if (waiters_.empty()) {
    return;
  }
  auto resume = std::move(waiters_.front());
  waiters_.erase(waiters_.begin());
  sim_->ScheduleAfter(0, std::move(resume));
}

void WaitQueue::NotifyAll() {
  std::vector<Simulation::Callback> all = std::move(waiters_);
  waiters_.clear();
  for (auto& resume : all) {
    sim_->ScheduleAfter(0, std::move(resume));
  }
}

}  // namespace espk
