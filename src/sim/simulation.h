// Discrete-event simulation engine. Everything in the Ethernet Speaker
// reproduction that the paper ran in real time — the kernel's audio clock,
// packet transmission on the LAN, speaker playback — runs on this virtual
// clock instead, so experiments are deterministic and a "60 second" run
// finishes in milliseconds.
//
// The engine is intentionally minimal: a time-ordered queue of callbacks.
// Events scheduled at the same instant run in scheduling order (stable FIFO),
// which the protocol relies on ("everybody receives a multicast packet at the
// same time", §3.2).
//
// Two interchangeable queue engines implement that contract:
//   - kTimerWheel (default): hashed hierarchical timer wheel
//     (src/sim/timer_wheel.h) + open-addressing callback table
//     (src/sim/event_map.h). O(1) schedule, no per-event node allocation —
//     what the fleet-scale sharded runtime runs on.
//   - kBinaryHeap: the original std::priority_queue engine. Kept as the
//     reference implementation: tests run the wheel against it as an
//     ordering oracle, and bench_fleet reports the wheel's win over it.
// Both engines produce bit-identical pop order (time, then scheduling
// order); the choice is pure mechanics, never semantics.
#ifndef SRC_SIM_SIMULATION_H_
#define SRC_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/time_types.h"
#include "src/sim/event_map.h"
#include "src/sim/timer_wheel.h"

namespace espk {

enum class QueueEngine {
  kTimerWheel,
  kBinaryHeap,
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  // Identifies a scheduled event so it can be cancelled. Id 0 is never used.
  struct EventHandle {
    uint64_t id = 0;
    bool valid() const { return id != 0; }
  };

  Simulation() = default;
  explicit Simulation(QueueEngine engine) : engine_(engine) {}
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  QueueEngine queue_engine() const { return engine_; }

  // Schedules `cb` to run at absolute time `at` (clamped to now).
  EventHandle ScheduleAt(SimTime at, Callback cb);
  // Schedules `cb` to run `delay` after now (negative delays clamp to now).
  EventHandle ScheduleAfter(SimDuration delay, Callback cb);

  // Cancels a pending event. Cancelling an already-run or already-cancelled
  // event is a harmless no-op. Returns true if the event was still pending.
  // The callback — and whatever state it captured — is destroyed here, not
  // when the event's deadline would have popped: callbacks live out-of-line
  // in an id-keyed table, and only a small (time, seq, id) stub stays queued.
  bool Cancel(EventHandle handle);

  // Runs the single earliest event; returns false if the queue is empty.
  bool RunOne();

  // Runs events until the queue is empty.
  void Run();

  // Runs all events with time <= t, then advances the clock to exactly t.
  void RunUntil(SimTime t);

  // RunUntil(now() + d).
  void RunFor(SimDuration d);

  size_t pending_events() const { return callbacks_.size(); }
  uint64_t events_processed() const { return events_processed_; }

  // Timer-wheel cascade count (0 under the kBinaryHeap engine, which has no
  // wheel to cascade). Part of the sharded runtime's self-telemetry.
  uint64_t timer_cascades() const { return wheel_.cascades(); }

  // Lower bound on the time of the next live event: the earliest queued
  // stub, which may belong to an already-cancelled event (so the true next
  // event can only be later, never earlier). kNoPendingEvent when nothing
  // is queued. The sharded runtime's epoch planner uses this to jump over
  // idle stretches instead of grinding lookahead-sized epochs through them.
  static constexpr SimTime kNoPendingEvent = INT64_MAX;
  SimTime next_pending_time();

 private:
  struct Later {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // Pops the earliest stub with time <= limit from whichever engine is
  // active; false when none qualifies. A popped stub whose id is no longer
  // in callbacks_ is a cancelled event's residue and must be skipped.
  bool PopNext(SimTime limit, TimerEntry* out);

  QueueEngine engine_ = QueueEngine::kTimerWheel;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_processed_ = 0;
  TimerWheel wheel_;  // kTimerWheel engine.
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, Later>
      queue_;             // kBinaryHeap engine.
  EventMap callbacks_;    // Pending events only.
};

// Repeats a callback with a fixed period until stopped. The callback receives
// the current simulated time. The first firing is one period after Start (or
// at Start time if `fire_immediately`).
class PeriodicTask {
 public:
  using TickCallback = std::function<void(SimTime)>;

  PeriodicTask(Simulation* sim, SimDuration period, TickCallback cb);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Start(bool fire_immediately = false);
  void Stop();
  bool running() const { return running_; }

  void set_period(SimDuration period) { period_ = period; }
  SimDuration period() const { return period_; }

 private:
  void Arm(SimDuration delay);

  Simulation* sim_;
  SimDuration period_;
  TickCallback cb_;
  bool running_ = false;
  Simulation::EventHandle pending_;
};

// A list of parked continuations — the simulation-world analogue of a kernel
// sleep queue / condition variable. The kernel uses these for blocking
// audio writes (tsleep/wakeup in OpenBSD terms).
class WaitQueue {
 public:
  explicit WaitQueue(Simulation* sim) : sim_(sim) {}

  // Parks `resume` until a Notify; resumptions run as fresh events at the
  // notification time (never synchronously inside Notify).
  void Wait(Simulation::Callback resume);

  // Wakes the oldest waiter / all waiters.
  void NotifyOne();
  void NotifyAll();

  size_t waiter_count() const { return waiters_.size(); }

 private:
  Simulation* sim_;
  std::vector<Simulation::Callback> waiters_;
};

}  // namespace espk

#endif  // SRC_SIM_SIMULATION_H_
