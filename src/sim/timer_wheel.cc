#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace espk {
namespace {

// Min-heap comparator for std::push_heap/pop_heap (which build max-heaps):
// "greater" on (time, seq).
bool DueAfter(const TimerEntry& a, const TimerEntry& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

// Bits strictly above position `pos` (pos in [0, 63]).
uint64_t BitsAbove(uint64_t pos) {
  return pos == 63 ? 0 : ~((uint64_t{2} << pos) - 1);
}

}  // namespace

TimerWheel::TimerWheel() {
  // Pre-reserve every bucket (and the due heap) so the steady state of a
  // typical workload never allocates inside the wheel: without this, each
  // first touch of a slot allocates its bucket storage, and because the
  // cursor keeps advancing those first touches trickle in for a full slot
  // revolution — visible as per-packet allocation drift in the alloc-pinned
  // fan-out tests. ~220 KiB per wheel; buckets that outgrow the reservation
  // keep their larger capacity across clear().
  constexpr size_t kInitialBucketCapacity = 16;
  due_.reserve(kInitialBucketCapacity);
  for (auto& level : slots_) {
    for (auto& bucket : level) {
      bucket.reserve(kInitialBucketCapacity);
    }
  }
}

void TimerWheel::PushDue(const TimerEntry& entry) {
  due_.push_back(entry);
  std::push_heap(due_.begin(), due_.end(), DueAfter);
}

void TimerWheel::File(const TimerEntry& entry) {
  assert(entry.time >= 0);
  const uint64_t t = Tick(entry.time);
  if (t <= cursor_) {
    PushDue(entry);
    return;
  }
  // Level = position of the highest differing tick bit / kSlotBits. Because
  // the bit differs there, the entry's slot at that level differs from the
  // cursor's — i.e. the slot is strictly ahead and won't be visited until
  // the cursor actually reaches it.
  const int level = (63 - std::countl_zero(t ^ cursor_)) / kSlotBits;
  assert(level < kLevels);
  const uint64_t slot = (t >> (level * kSlotBits)) & (kSlots - 1);
  slots_[level][slot].push_back(entry);
  occupied_[level] |= uint64_t{1} << slot;
}

void TimerWheel::Schedule(const TimerEntry& entry) {
  File(entry);
  ++size_;
}

bool TimerWheel::PopEarliest(SimTime limit, TimerEntry* out) {
  // Every wheel slot holds ticks strictly after the cursor, and every due
  // entry holds ticks at or before it — once settled, the due heap's
  // minimum is the global minimum.
  if (!Settle() || due_.front().time > limit) {
    return false;
  }
  std::pop_heap(due_.begin(), due_.end(), DueAfter);
  *out = due_.back();
  due_.pop_back();
  --size_;
  return true;
}

bool TimerWheel::PeekEarliest(TimerEntry* out) {
  if (!Settle()) {
    return false;
  }
  *out = due_.front();
  return true;
}

bool TimerWheel::Settle() {
  while (due_.empty()) {
    if (size_ == 0) {
      return false;
    }
    // Jump the cursor to the chronologically next occupied slot. Scanning
    // levels bottom-up is correct: any occupied level-L slot begins before
    // every occupied slot at level L+1 (the level-(L+1) slot differs from
    // the cursor in a higher bit, so it starts at or after the end of the
    // cursor's whole level-L revolution).
    int level = -1;
    uint64_t slot = 0;
    for (int l = 0; l < kLevels; ++l) {
      const uint64_t pos = (cursor_ >> (l * kSlotBits)) & (kSlots - 1);
      const uint64_t ahead = occupied_[l] & BitsAbove(pos);
      if (ahead != 0) {
        level = l;
        slot = static_cast<uint64_t>(std::countr_zero(ahead));
        break;
      }
    }
    assert(level >= 0 && "size_ > 0 but no occupied slot ahead of cursor");
    const int shift = level * kSlotBits;
    const uint64_t slot_start_tick =
        (((cursor_ >> shift) & ~uint64_t{kSlots - 1}) | slot) << shift;
    cursor_ = slot_start_tick;
    std::vector<TimerEntry>& bucket = slots_[level][slot];
    occupied_[level] &= ~(uint64_t{1} << slot);
    if (level == 0) {
      for (const TimerEntry& e : bucket) {
        PushDue(e);
      }
    } else {
      // Cascade: with the cursor now inside this slot's span, each entry
      // re-files at a strictly lower level (its highest differing bit is
      // below this level by construction).
      cascades_ += bucket.size();
      for (const TimerEntry& e : bucket) {
        File(e);
      }
    }
    bucket.clear();
  }
  return true;
}

}  // namespace espk
