// Hashed hierarchical timer wheel — the event queue of a shard's event
// loop. The per-packet callback storm of a large fleet (one decode / play
// timer per speaker per packet) makes the classic binary-heap event queue
// the bottleneck: every push and pop percolates O(log n) cache lines. The
// wheel schedules in O(1): an entry's expiry tick is hashed into one of 64
// slots at the level matching its distance, levels cover geometrically
// larger horizons, and far entries cascade down a level each time the
// cursor reaches their slot.
//
// Determinism contract (the reason this is not an off-the-shelf wheel):
// entries pop in exactly (time, seq) order — seq is the caller's insertion
// counter, so same-instant entries stay FIFO. The paper's protocol depends
// on that ("everybody receives a multicast packet at the same time", §3.2),
// and the sharded runtime's bit-identity guarantee depends on the wheel
// agreeing with the binary-heap oracle on every pop
// (tests/shard_test.cc exercises the two against each other).
//
// Internals: ticks are time >> kTickBits (1.024 us). Level L slots are
// 64^L ticks wide; an entry is filed at the level of the highest bit in
// which its tick differs from the cursor's, so a slot is always strictly
// ahead of the cursor and cascading re-files at a strictly lower level
// (terminates). Entries whose tick has been reached live in `due_`, a tiny
// (time, seq) min-heap that holds at most one slot's worth of entries plus
// same-tick insertions — the only O(log n) structure left, over a few
// entries instead of the whole queue. Occupancy bitmaps (one uint64 per
// level) let the cursor jump straight to the next populated slot instead of
// stepping tick by tick.
#ifndef SRC_SIM_TIMER_WHEEL_H_
#define SRC_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/base/time_types.h"

namespace espk {

// What the wheel stores: the scheduled instant, the scheduler's FIFO
// tie-breaker, and an opaque id the owner resolves to a callback (or to
// nothing, for cancelled stubs — the wheel itself never learns about
// cancellation, exactly like the heap it replaces).
struct TimerEntry {
  SimTime time = 0;
  uint64_t seq = 0;
  uint64_t id = 0;
};

class TimerWheel {
 public:
  TimerWheel();

  // Files `entry`. Entries at or before the cursor's current tick are
  // accepted (they join the due heap); times must be non-negative.
  void Schedule(const TimerEntry& entry);

  // Pops the earliest entry (by (time, seq)) whose time is <= `limit` into
  // `*out`, advancing the cursor as needed. Returns false — leaving `*out`
  // untouched — when no such entry exists.
  bool PopEarliest(SimTime limit, TimerEntry* out);

  // Copies the earliest entry into `*out` without removing it; false when
  // empty. Advances the cursor as a side effect (harmless: ordering never
  // depends on the cursor, only filing efficiency does). The sharded
  // runtime's epoch planner uses this to jump over idle stretches.
  bool PeekEarliest(TimerEntry* out);

  // Entries currently filed (including cancelled stubs not yet popped).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Entries re-filed from a higher level when the cursor reached their slot
  // — each cascade is a re-hash plus a vector append, so the count is the
  // wheel's self-telemetry for "how much filing work the horizon shape
  // causes" (far-future timers cascade once per level they descend).
  uint64_t cascades() const { return cascades_; }

 private:
  static constexpr int kTickBits = 10;  // 1 tick = 1.024 us.
  static constexpr int kSlotBits = 6;   // 64 slots per level.
  static constexpr int kSlots = 1 << kSlotBits;
  // 9 levels x 6 bits = 54 bits of ticks; with 10 tick bits that spans the
  // full non-negative SimTime range, so there is no overflow list.
  static constexpr int kLevels = 9;

  static uint64_t Tick(SimTime t) {
    return static_cast<uint64_t>(t) >> kTickBits;
  }

  // Files into a wheel slot or the due heap without touching size_.
  void File(const TimerEntry& entry);
  void PushDue(const TimerEntry& entry);
  // Advances the cursor (cascading slots) until the globally-earliest entry
  // sits at due_.front(); false when the wheel is empty.
  bool Settle();

  uint64_t cursor_ = 0;  // Tick the wheel has advanced to.
  size_t size_ = 0;
  uint64_t cascades_ = 0;
  // due_ is kept as a std::push_heap/pop_heap min-heap on (time, seq).
  std::vector<TimerEntry> due_;
  std::vector<TimerEntry> slots_[kLevels][kSlots];
  uint64_t occupied_[kLevels] = {};  // Bit s set => slots_[L][s] non-empty.
};

}  // namespace espk

#endif  // SRC_SIM_TIMER_WHEEL_H_
