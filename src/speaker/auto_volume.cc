#include "src/speaker/auto_volume.h"

#include <algorithm>
#include <cmath>

namespace espk {

AutoVolumeController::AutoVolumeController(EthernetSpeaker* speaker,
                                           AmbientNoiseModel ambient,
                                           const AutoVolumeOptions& options)
    : speaker_(speaker),
      ambient_(std::move(ambient)),
      options_(options),
      task_(speaker->sim(), options.interval,
            [this](SimTime now) { Tick(now); }) {}

void AutoVolumeController::Tick(SimTime now) {
  OutputRecorder* recorder = speaker_->output();
  if (recorder == nullptr) {
    return;  // Not tuned / no control packet yet.
  }
  double ambient_rms = ambient_(now);
  // The microphone hears the speaker's own output; the recorder already has
  // the gain applied, so this is the acoustic level at the mic.
  double output_rms = recorder->RecentRms(now, options_.window);
  float gain = speaker_->gain();

  // The source material's level, separated back out of the mic reading so
  // "audio segments recorded at different volume levels produce the same
  // sound levels" (§5.2).
  double source_rms = output_rms / std::max<double>(gain, 1e-6);
  if (source_rms > 1e-5) {
    double ratio = options_.mode == VolumeMode::kBackgroundMusic
                       ? options_.music_ratio
                       : options_.announcement_ratio;
    double target_output = std::max(ambient_rms * ratio, 1e-4);
    double desired_gain = target_output / source_rms;
    double new_gain = gain + options_.adjust_rate * (desired_gain - gain);
    gain = std::clamp(static_cast<float>(new_gain), options_.min_gain,
                      options_.max_gain);
    speaker_->set_gain(gain);
  }
  history_.push_back(Sample{now, ambient_rms, output_rms, gain});
}

}  // namespace espk
