// Automatic volume control (§5.2, future work implemented): each Ethernet
// Speaker has a microphone next to it, which hears the speaker's own output
// plus the room's ambient noise. The controller compares the two and steers
// the playback gain:
//
//  * background music mode — track the ambient level, so music stays
//    discreet in a quiet room and present in a noisy one, and recordings
//    mastered at different levels come out at the same loudness;
//  * announcement mode — stay well above the ambient level so announcements
//    "are likely to be heard" over crowd noise.
#ifndef SRC_SPEAKER_AUTO_VOLUME_H_
#define SRC_SPEAKER_AUTO_VOLUME_H_

#include <functional>
#include <vector>

#include "src/sim/simulation.h"
#include "src/speaker/speaker.h"

namespace espk {

enum class VolumeMode {
  kBackgroundMusic,
  kAnnouncement,
};

struct AutoVolumeOptions {
  VolumeMode mode = VolumeMode::kBackgroundMusic;
  SimDuration interval = Milliseconds(500);
  SimDuration window = Milliseconds(500);
  // Output-to-ambient RMS ratio the controller aims for.
  double music_ratio = 1.0;
  double announcement_ratio = 4.0;
  float min_gain = 0.05f;
  float max_gain = 8.0f;
  // Fraction of the gain error corrected per tick (first-order loop).
  double adjust_rate = 0.5;
};

// The simulated microphone's ambient-noise pickup (RMS) as a function of
// time; the scenario supplies it (e.g. quiet at night, loud at rush hour).
using AmbientNoiseModel = std::function<double(SimTime)>;

class AutoVolumeController {
 public:
  AutoVolumeController(EthernetSpeaker* speaker, AmbientNoiseModel ambient,
                       const AutoVolumeOptions& options);

  void Start() { task_.Start(); }
  void Stop() { task_.Stop(); }

  void set_mode(VolumeMode mode) { options_.mode = mode; }
  VolumeMode mode() const { return options_.mode; }

  struct Sample {
    SimTime time;
    double ambient_rms;
    double output_rms;  // What the mic heard from the speaker.
    float gain;         // Gain after this tick's adjustment.
  };
  const std::vector<Sample>& history() const { return history_; }

 private:
  void Tick(SimTime now);

  EthernetSpeaker* speaker_;
  AmbientNoiseModel ambient_;
  AutoVolumeOptions options_;
  std::vector<Sample> history_;
  PeriodicTask task_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_AUTO_VOLUME_H_
