#include "src/speaker/playback.h"

#include <algorithm>
#include <cmath>

namespace espk {

void OutputRecorder::Play(SimTime start, std::vector<float> samples,
                          float gain) {
  if (samples.empty()) {
    return;
  }
  if (gain != 1.0f) {
    for (float& s : samples) {
      s *= gain;
    }
  }
  segments_.push_back(Segment{start, std::move(samples)});
}

std::vector<float> OutputRecorder::Render(SimTime from,
                                          SimDuration duration) const {
  const int64_t frames = DurationToFrames(duration, sample_rate_);
  std::vector<float> out(static_cast<size_t>(frames * channels_), 0.0f);
  for (const Segment& seg : segments_) {
    int64_t seg_start_frame =
        DurationToFrames(seg.start - from, sample_rate_);
    const auto seg_frames =
        static_cast<int64_t>(seg.samples.size()) / channels_;
    for (int64_t f = 0; f < seg_frames; ++f) {
      int64_t out_frame = seg_start_frame + f;
      if (out_frame < 0 || out_frame >= frames) {
        continue;
      }
      for (int c = 0; c < channels_; ++c) {
        out[static_cast<size_t>(out_frame * channels_ + c)] =
            seg.samples[static_cast<size_t>(f * channels_ + c)];
      }
    }
  }
  return out;
}

SimTime OutputRecorder::last_end() const {
  if (segments_.empty()) {
    return -1;
  }
  const Segment& last = segments_.back();
  return last.start + last.duration(sample_rate_, channels_);
}

int OutputRecorder::CountGaps(SimDuration threshold) const {
  int gaps = 0;
  for (size_t i = 1; i < segments_.size(); ++i) {
    SimTime prev_end = segments_[i - 1].start +
                       segments_[i - 1].duration(sample_rate_, channels_);
    if (segments_[i].start - prev_end > threshold) {
      ++gaps;
    }
  }
  return gaps;
}

SimDuration OutputRecorder::TotalGapTime() const {
  SimDuration total = 0;
  for (size_t i = 1; i < segments_.size(); ++i) {
    SimTime prev_end = segments_[i - 1].start +
                       segments_[i - 1].duration(sample_rate_, channels_);
    if (segments_[i].start > prev_end) {
      total += segments_[i].start - prev_end;
    }
  }
  return total;
}

double OutputRecorder::RecentRms(SimTime now, SimDuration window) const {
  SimTime from = now - window;
  double acc = 0.0;
  int64_t count = 0;
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    SimTime seg_end = it->start + it->duration(sample_rate_, channels_);
    if (seg_end <= from) {
      break;  // Segments are time-ordered; nothing older can overlap.
    }
    if (it->start >= now) {
      continue;
    }
    for (float s : it->samples) {
      acc += static_cast<double>(s) * s;
      ++count;
    }
  }
  return count > 0 ? std::sqrt(acc / static_cast<double>(count)) : 0.0;
}

}  // namespace espk
