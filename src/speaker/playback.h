// Simulated speaker output stage: records exactly which samples left the
// speaker at which simulated instant. Experiments reconstruct each
// speaker's acoustic timeline from this and measure inter-speaker skew,
// gaps (underruns), and content fidelity — the things a listener standing
// between two Ethernet Speakers would hear (§3.2).
#ifndef SRC_SPEAKER_PLAYBACK_H_
#define SRC_SPEAKER_PLAYBACK_H_

#include <cstdint>
#include <vector>

#include "src/audio/format.h"
#include "src/base/time_types.h"

namespace espk {

class OutputRecorder {
 public:
  OutputRecorder(int sample_rate, int channels)
      : sample_rate_(sample_rate), channels_(channels) {}

  // Plays `samples` (interleaved) starting at `start`, scaled by `gain`.
  // Segments are expected in nondecreasing start order (chunks are played
  // by deadline); overlapping audio is overwritten by the newer segment at
  // Render time.
  void Play(SimTime start, std::vector<float> samples, float gain);

  // Renders the continuous waveform in [from, from+duration): silence where
  // nothing was playing.
  std::vector<float> Render(SimTime from, SimDuration duration) const;

  struct Segment {
    SimTime start;
    std::vector<float> samples;  // Interleaved, gain applied.
    SimDuration duration(int sample_rate, int channels) const {
      return FramesToDuration(
          static_cast<int64_t>(samples.size()) / channels, sample_rate);
    }
  };
  const std::vector<Segment>& segments() const { return segments_; }

  int sample_rate() const { return sample_rate_; }
  int channels() const { return channels_; }

  SimTime first_start() const {
    return segments_.empty() ? -1 : segments_.front().start;
  }
  SimTime last_end() const;

  // Gaps between consecutive segments longer than `threshold` — audible
  // dropouts.
  int CountGaps(SimDuration threshold) const;
  SimDuration TotalGapTime() const;

  // Average absolute output level over the most recent `window` ending at
  // `now` (used by the §5.2 auto-volume loop's self-monitoring microphone).
  double RecentRms(SimTime now, SimDuration window) const;

 private:
  int sample_rate_;
  int channels_;
  std::vector<Segment> segments_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_PLAYBACK_H_
