#include "src/speaker/recorder.h"

#include "src/base/logging.h"

namespace espk {

StreamRecorder::StreamRecorder(Simulation* sim, Transport* nic)
    : sim_(sim), nic_(nic) {
  (void)sim_;
  nic_->SetReceiveHandler([this](const Datagram& d) { OnDatagram(d); });
}

Status StreamRecorder::StartRecording(GroupId group) {
  if (group_.has_value()) {
    return FailedPreconditionError("already recording");
  }
  ESPK_RETURN_IF_ERROR(nic_->JoinGroup(group));
  group_ = group;
  return OkStatus();
}

Status StreamRecorder::StopRecording() {
  if (!group_.has_value()) {
    return FailedPreconditionError("not recording");
  }
  ESPK_RETURN_IF_ERROR(nic_->LeaveGroup(*group_));
  group_.reset();
  return OkStatus();
}

void StreamRecorder::OnDatagram(const Datagram& datagram) {
  if (!group_.has_value() || datagram.group != *group_) {
    return;
  }
  Result<ParsedPacket> parsed = ParsePacket(datagram.payload);
  if (!parsed.ok()) {
    return;
  }
  if (const auto* control = std::get_if<ControlPacket>(&parsed->packet)) {
    if (!config_.has_value() || *config_ != control->config) {
      Result<std::unique_ptr<AudioDecoder>> decoder =
          CreateDecoder(control->codec, control->config, control->quality);
      if (!decoder.ok()) {
        return;
      }
      // A config change starts a new program; recorders keep it simple and
      // restart the take (the old chunks no longer share a sample grid).
      config_ = control->config;
      decoder_ = std::move(*decoder);
      chunks_.clear();
    }
    return;
  }
  const auto* data = std::get_if<DataPacket>(&parsed->packet);
  if (data == nullptr || decoder_ == nullptr) {
    return;
  }
  if (chunks_.count(data->seq) > 0) {
    ++stats_.duplicate_chunks;
    return;
  }
  Result<std::vector<float>> samples = decoder_->DecodePacket(data->payload);
  if (!samples.ok()) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.chunks_recorded;
  chunks_[data->seq] = Chunk{std::move(*samples), data->frame_count};
}

PcmBuffer StreamRecorder::Assemble() const {
  PcmBuffer out;
  if (!config_.has_value() || chunks_.empty()) {
    return out;
  }
  out.channels = config_->channels;
  out.sample_rate = config_->sample_rate;
  uint32_t expected_seq = chunks_.begin()->first;
  uint32_t typical_frames = chunks_.begin()->second.frame_count;
  auto* mutable_stats = const_cast<RecorderStats*>(&stats_);
  mutable_stats->gaps_filled = 0;
  mutable_stats->frames_recorded = 0;
  for (const auto& [seq, chunk] : chunks_) {
    // Fill lost packets with silence so later audio keeps its place.
    while (expected_seq < seq) {
      out.samples.insert(out.samples.end(),
                         static_cast<size_t>(typical_frames) *
                             static_cast<size_t>(out.channels),
                         0.0f);
      mutable_stats->frames_recorded += typical_frames;
      ++mutable_stats->gaps_filled;
      ++expected_seq;
    }
    out.samples.insert(out.samples.end(), chunk.samples.begin(),
                       chunk.samples.end());
    mutable_stats->frames_recorded += chunk.frame_count;
    expected_seq = seq + 1;
  }
  return out;
}

Status StreamRecorder::ExportWav(const std::string& path) const {
  PcmBuffer pcm = Assemble();
  if (pcm.samples.empty()) {
    return FailedPreconditionError("nothing recorded yet");
  }
  return WriteWavFile(path, pcm);
}

}  // namespace espk
