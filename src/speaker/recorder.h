// Time shifting (§2.1, §3.3): "Certain streaming services offer no means of
// storing the audio stream for later playback"; the Ethernet Speaker
// architecture fixes that for free — a recorder is just one more
// receive-only station on the multicast group. It decodes data packets,
// reassembles them in sequence order (a recorder can afford to reorder;
// live speakers cannot), fills network losses with silence so the timeline
// stays intact, and exports standard WAV.
#ifndef SRC_SPEAKER_RECORDER_H_
#define SRC_SPEAKER_RECORDER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/audio/pcm.h"
#include "src/audio/wav.h"
#include "src/codec/codec.h"
#include "src/lan/transport.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"

namespace espk {

struct RecorderStats {
  uint64_t chunks_recorded = 0;
  uint64_t duplicate_chunks = 0;
  uint64_t decode_errors = 0;
  uint64_t gaps_filled = 0;       // Missing sequence numbers padded.
  int64_t frames_recorded = 0;    // Including silence fill.
};

class StreamRecorder {
 public:
  StreamRecorder(Simulation* sim, Transport* nic);

  // Joins `group` and starts capturing. Like a speaker, nothing can be
  // decoded until the first control packet arrives.
  Status StartRecording(GroupId group);
  // Leaves the group; the recording stays available.
  Status StopRecording();

  bool recording() const { return group_.has_value(); }
  bool ready() const { return config_.has_value(); }
  const RecorderStats& stats() const { return stats_; }
  const std::optional<AudioConfig>& config() const { return config_; }

  // Assembles everything captured so far, in sequence order, with silence
  // where packets were lost. Empty buffer before the first control packet.
  PcmBuffer Assemble() const;

  // Assemble() + WAV file.
  Status ExportWav(const std::string& path) const;

 private:
  void OnDatagram(const Datagram& datagram);

  Simulation* sim_;
  Transport* nic_;
  std::optional<GroupId> group_;
  std::optional<AudioConfig> config_;
  std::unique_ptr<AudioDecoder> decoder_;
  // Decoded chunks by sequence number; frame counts tracked for gap fill.
  struct Chunk {
    std::vector<float> samples;
    uint32_t frame_count;
  };
  std::map<uint32_t, Chunk> chunks_;
  RecorderStats stats_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_RECORDER_H_
