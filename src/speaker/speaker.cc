#include "src/speaker/speaker.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace espk {

EthernetSpeaker::EthernetSpeaker(Simulation* sim, Transport* nic,
                                 const SpeakerOptions& options)
    : sim_(sim), nic_(nic), options_(options) {
  nic_->SetReceiveHandler(
      [this](const Datagram& datagram) { OnDatagram(datagram); });
}

EthernetSpeaker::~EthernetSpeaker() = default;

Status EthernetSpeaker::Subscribe(GroupId group) {
  if (sessions_.count(group) > 0) {
    return AlreadyExistsError("already subscribed to group " +
                              std::to_string(group));
  }
  ESPK_RETURN_IF_ERROR(nic_->JoinGroup(group));
  sessions_[group] =
      std::make_unique<StreamSession>(this, group, ++next_session_epoch_);
  subscribe_order_.push_back(group);
  return OkStatus();
}

Status EthernetSpeaker::Unsubscribe(GroupId group) {
  auto it = sessions_.find(group);
  if (it == sessions_.end()) {
    return NotFoundError("not subscribed to group " + std::to_string(group));
  }
  ESPK_RETURN_IF_ERROR(nic_->LeaveGroup(group));
  // The session's share of the jitter buffer leaves with it; in-flight
  // pipeline obligations carry its (now stale) epoch and become no-ops.
  sessions_.erase(it);
  subscribe_order_.erase(
      std::find(subscribe_order_.begin(), subscribe_order_.end(), group));
  if (sessions_.empty()) {
    // Matches the historical Tune/Untune reset: an idle device's decode
    // pipeline does not stay busy into its next subscription.
    decode_busy_until_ = sim_->now();
  }
  return OkStatus();
}

Status EthernetSpeaker::Tune(GroupId group) {
  while (!subscribe_order_.empty()) {
    ESPK_RETURN_IF_ERROR(Unsubscribe(subscribe_order_.front()));
  }
  return Subscribe(group);
}

Status EthernetSpeaker::Untune() {
  if (subscribe_order_.empty()) {
    return FailedPreconditionError("not tuned to any channel");
  }
  while (!subscribe_order_.empty()) {
    ESPK_RETURN_IF_ERROR(Unsubscribe(subscribe_order_.front()));
  }
  return OkStatus();
}

std::optional<GroupId> EthernetSpeaker::tuned_group() const {
  if (subscribe_order_.empty()) {
    return std::nullopt;
  }
  return subscribe_order_.front();
}

StreamSession* EthernetSpeaker::FindSession(GroupId group) {
  auto it = sessions_.find(group);
  return it == sessions_.end() ? nullptr : it->second.get();
}

StreamSession* EthernetSpeaker::session(GroupId group) {
  return FindSession(group);
}

const StreamSession* EthernetSpeaker::session(GroupId group) const {
  auto it = sessions_.find(group);
  return it == sessions_.end() ? nullptr : it->second.get();
}

StreamSession* EthernetSpeaker::primary() {
  return subscribe_order_.empty()
             ? nullptr
             : sessions_.at(subscribe_order_.front()).get();
}

const StreamSession* EthernetSpeaker::primary() const {
  return subscribe_order_.empty()
             ? nullptr
             : sessions_.at(subscribe_order_.front()).get();
}

OutputRecorder* EthernetSpeaker::output() {
  StreamSession* p = primary();
  return p == nullptr ? nullptr : p->output();
}

const std::optional<AudioConfig>& EthernetSpeaker::config() const {
  const StreamSession* p = primary();
  return p == nullptr ? no_config_ : p->config();
}

bool EthernetSpeaker::ready() const {
  for (const auto& [group, session] : sessions_) {
    if (session->ready()) {
      return true;
    }
  }
  return false;
}

size_t EthernetSpeaker::queued_pcm_bytes() const {
  size_t total = 0;
  for (const auto& [group, session] : sessions_) {
    total += session->queued_pcm_bytes();
  }
  return total;
}

std::vector<float> EthernetSpeaker::RenderMix(SimTime from,
                                              SimDuration duration) {
  StreamSession* base = nullptr;
  for (GroupId group : subscribe_order_) {
    StreamSession* s = sessions_.at(group).get();
    if (s->ready()) {
      base = s;
      break;
    }
  }
  if (base == nullptr) {
    return {};
  }
  std::vector<float> mix = base->output()->Render(from, duration);
  for (GroupId group : subscribe_order_) {
    StreamSession* s = sessions_.at(group).get();
    if (s == base || !s->ready() ||
        s->config()->sample_rate != base->config()->sample_rate ||
        s->config()->channels != base->config()->channels) {
      continue;
    }
    std::vector<float> other = s->output()->Render(from, duration);
    const size_t n = std::min(mix.size(), other.size());
    for (size_t i = 0; i < n; ++i) {
      mix[i] += other[i];
    }
  }
  return mix;
}

void EthernetSpeaker::OnDatagram(const Datagram& datagram) {
  Result<ParsedPacket> parsed = ParsePacket(datagram.payload);
  PendingDecode pending;
  IngestParsed(parsed, datagram.group, &pending);
  CommitDecode(std::move(pending));
}

void EthernetSpeaker::IngestParsed(const Result<ParsedPacket>& parsed,
                                   GroupId group, PendingDecode* out) {
  ++stats_.packets_received;
  if (!parsed.ok()) {
    // Damaged or non-protocol datagram: integrity check failed (§5.1).
    ++stats_.bad_packets;
    return;
  }
  if (options_.auth_verifier && !options_.auth_verifier(*parsed)) {
    ++stats_.auth_rejected;
    return;
  }
  StreamSession* session = FindSession(group);
  if (session == nullptr) {
    // No subscription for this group. Possible transiently: packets already
    // queued on the wire when an unsubscribe's membership change lands.
    return;
  }
  if (const auto* control = std::get_if<ControlPacket>(&parsed->packet)) {
    session->HandleControl(*control);
  } else if (const auto* data = std::get_if<DataPacket>(&parsed->packet)) {
    session->HandleData(*data, out);
  }
  // Announce packets are handled by the catalog browser (src/mgmt), not by
  // the playback path.
}

void EthernetSpeaker::CommitDecode(PendingDecode pending) {
  if (!pending.valid) {
    return;
  }
  const SimTime decode_done = pending.decode_done;
  sim_->ScheduleAt(decode_done, [this, pending = std::move(pending)] {
    PendingPlay play;
    RunDecode(pending, &play);
    CommitPlay(std::move(play));
  });
}

void EthernetSpeaker::CommitPlay(PendingPlay play) {
  if (!play.valid) {
    return;
  }
  const SimTime at = play.at;
  sim_->ScheduleAt(at, [this, play = std::move(play)]() mutable {
    RunPlay(std::move(play));
  });
}

void EthernetSpeaker::Trace(uint32_t stream_id, uint32_t seq,
                            TraceStage stage) {
  if (options_.tracer != nullptr) {
    options_.tracer->Record(stream_id, seq, stage, nic_->node_id());
  }
}

void EthernetSpeaker::RunDecode(const PendingDecode& pending,
                                PendingPlay* out_play) {
  StreamSession* session = FindSession(pending.group);
  if (session == nullptr || session->epoch() != pending.session_epoch) {
    return;  // Unsubscribed while the chunk was in the pipeline.
  }
  session->RunDecode(pending, out_play);
}

void EthernetSpeaker::RunPlay(PendingPlay play) {
  StreamSession* session = FindSession(play.group);
  if (session == nullptr || session->epoch() != play.session_epoch) {
    return;  // Unsubscribed while the chunk was in the pipeline.
  }
  session->RunPlay(std::move(play));
}

}  // namespace espk
