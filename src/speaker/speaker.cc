#include "src/speaker/speaker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace espk {

EthernetSpeaker::EthernetSpeaker(Simulation* sim, Transport* nic,
                                 const SpeakerOptions& options)
    : sim_(sim), nic_(nic), options_(options) {
  nic_->SetReceiveHandler(
      [this](const Datagram& datagram) { OnDatagram(datagram); });
}

Status EthernetSpeaker::Tune(GroupId group) {
  if (group_.has_value()) {
    ESPK_RETURN_IF_ERROR(Untune());
  }
  ESPK_RETURN_IF_ERROR(nic_->JoinGroup(group));
  group_ = group;
  ResetChannelState();
  return OkStatus();
}

Status EthernetSpeaker::Untune() {
  if (!group_.has_value()) {
    return FailedPreconditionError("not tuned to any channel");
  }
  ESPK_RETURN_IF_ERROR(nic_->LeaveGroup(*group_));
  group_.reset();
  ResetChannelState();
  return OkStatus();
}

void EthernetSpeaker::ResetChannelState() {
  config_.reset();
  decoder_.reset();
  recorder_.reset();
  control_seq_ = 0;
  decode_busy_until_ = sim_->now();
  queued_pcm_bytes_ = 0;
  highest_seq_seen_ = 0;
  any_data_seen_ = false;
  last_play_end_ = 0;
}

void EthernetSpeaker::NotePlay(SimTime at, size_t sample_count) {
  if (last_play_end_ != 0 && at > last_play_end_) {
    stats_.silence_ns += at - last_play_end_;
  }
  if (config_.has_value() && config_->sample_rate > 0 &&
      config_->channels > 0) {
    const int64_t frames =
        static_cast<int64_t>(sample_count / config_->channels);
    last_play_end_ = at + frames * 1'000'000'000 / config_->sample_rate;
  } else {
    last_play_end_ = at;
  }
}

void EthernetSpeaker::OnDatagram(const Datagram& datagram) {
  Result<ParsedPacket> parsed = ParsePacket(datagram.payload);
  PendingDecode pending;
  IngestParsed(parsed, &pending);
  CommitDecode(std::move(pending));
}

void EthernetSpeaker::IngestParsed(const Result<ParsedPacket>& parsed,
                                   PendingDecode* out) {
  ++stats_.packets_received;
  if (!parsed.ok()) {
    // Damaged or non-protocol datagram: integrity check failed (§5.1).
    ++stats_.bad_packets;
    return;
  }
  if (options_.auth_verifier && !options_.auth_verifier(*parsed)) {
    ++stats_.auth_rejected;
    return;
  }
  if (const auto* control = std::get_if<ControlPacket>(&parsed->packet)) {
    HandleControl(*control);
  } else if (const auto* data = std::get_if<DataPacket>(&parsed->packet)) {
    HandleData(*data, out);
  }
  // Announce packets are handled by the catalog browser (src/mgmt), not by
  // the playback path.
}

void EthernetSpeaker::CommitDecode(PendingDecode pending) {
  if (!pending.valid) {
    return;
  }
  const SimTime decode_done = pending.decode_done;
  sim_->ScheduleAt(decode_done, [this, pending = std::move(pending)] {
    PendingPlay play;
    RunDecode(pending, &play);
    CommitPlay(std::move(play));
  });
}

void EthernetSpeaker::CommitPlay(PendingPlay play) {
  if (!play.valid) {
    return;
  }
  const SimTime at = play.at;
  sim_->ScheduleAt(at, [this, play = std::move(play)]() mutable {
    RunPlay(std::move(play));
  });
}

void EthernetSpeaker::HandleControl(const ControlPacket& packet) {
  ++stats_.control_packets;
  SimTime now = sim_->now();
  // Adopt the producer's wall clock. Transmission latency is deliberately
  // ignored — the §3.2 uniform-delivery assumption. With smoothing enabled
  // (an extension), jittered control arrivals average out instead of each
  // one yanking the timeline.
  SimDuration sample = now - packet.producer_clock;
  if (!config_.has_value() || options_.clock_smoothing_alpha >= 1.0) {
    clock_offset_ = sample;
  } else {
    double alpha = options_.clock_smoothing_alpha;
    clock_offset_ = static_cast<SimDuration>(
        alpha * static_cast<double>(sample) +
        (1.0 - alpha) * static_cast<double>(clock_offset_));
  }

  bool config_changed = !config_.has_value() || *config_ != packet.config ||
                        codec_ != packet.codec ||
                        control_seq_ != packet.control_seq;
  if (!config_changed) {
    return;
  }
  Result<std::unique_ptr<AudioDecoder>> decoder =
      CreateDecoder(packet.codec, packet.config, packet.quality);
  if (!decoder.ok()) {
    ESPK_LOG(kWarning) << options_.name
                       << ": unusable control packet: " << decoder.status();
    return;
  }
  config_ = packet.config;
  codec_ = packet.codec;
  quality_ = packet.quality;
  control_seq_ = packet.control_seq;
  decoder_ = std::move(*decoder);
  // A genuine config change restarts the output epoch; periodic control
  // repeats (same control_seq) never get here.
  recorder_ = std::make_unique<OutputRecorder>(config_->sample_rate,
                                               config_->channels);
  ESPK_LOG(kDebug) << options_.name << ": tuned, config "
                   << config_->ToString();
}

void EthernetSpeaker::Trace(uint32_t stream_id, uint32_t seq,
                            TraceStage stage) {
  if (options_.tracer != nullptr) {
    options_.tracer->Record(stream_id, seq, stage, nic_->node_id());
  }
}

void EthernetSpeaker::HandleData(const DataPacket& packet,
                                 PendingDecode* out) {
  ++stats_.data_packets;
  Trace(packet.stream_id, packet.seq, TraceStage::kSpeakerReceive);
  if (!config_.has_value()) {
    // §2.3: "The Ethernet Speaker has to wait till it receives a control
    // packet before it can start playing the audio stream."
    ++stats_.waiting_drops;
    return;
  }
  if (any_data_seen_ && packet.seq <= highest_seq_seen_ &&
      highest_seq_seen_ - packet.seq < 1000) {
    ++stats_.duplicate_drops;
    return;
  }
  any_data_seen_ = true;
  highest_seq_seen_ = std::max(highest_seq_seen_, packet.seq);

  // Buffer accounting uses the decoded size; refuse when full (§3.1 — this
  // is the buffer a non-rate-limited producer overflows).
  const size_t decoded_bytes = static_cast<size_t>(packet.frame_count) *
                               static_cast<size_t>(config_->channels) *
                               sizeof(float);
  if (queued_pcm_bytes_ + decoded_bytes > options_.jitter_buffer_bytes) {
    ++stats_.overflow_drops;
    return;
  }

  SimTime now = sim_->now();
  SimTime local_deadline = packet.play_deadline + clock_offset_;

  // Serialized decode pipeline with CPU cost proportional to audio
  // duration (§3.4: the slow EON 4000 decode stage).
  SimDuration audio_duration =
      FramesToDuration(packet.frame_count, config_->sample_rate);
  auto decode_time = static_cast<SimDuration>(
      static_cast<double>(audio_duration) * options_.decode_speed_factor);
  SimTime decode_start = std::max(now, decode_busy_until_);
  SimTime decode_done = decode_start + decode_time;
  decode_busy_until_ = decode_done;
  if (options_.tracer != nullptr && options_.tracer->has_observer()) {
    // Span-plane stage: separates jitter-buffer dwell (receive ->
    // decode_start) from decode itself. decode_start may be in the future
    // when the serialized pipeline is busy, hence RecordAt.
    options_.tracer->RecordAt(packet.stream_id, packet.seq,
                              TraceStage::kDecodeStart, nic_->node_id(),
                              decode_start);
  }

  // The packet occupies the jitter buffer from arrival; the payload rides
  // the pipeline as a slice of the arrival buffer (no copy, and the slice
  // keeps that buffer alive) until the decode stage actually runs.
  queued_pcm_bytes_ += decoded_bytes;
  out->valid = true;
  out->decode_done = decode_done;
  out->stream_id = packet.stream_id;
  out->seq = packet.seq;
  out->local_deadline = local_deadline;
  out->payload = packet.payload;
  out->decoded_bytes = decoded_bytes;
}

void EthernetSpeaker::RunDecode(const PendingDecode& pending,
                                PendingPlay* out_play) {
  if (decoder_ == nullptr || recorder_ == nullptr) {
    queued_pcm_bytes_ -= pending.decoded_bytes;
    return;  // Channel was re-tuned while the chunk was in the pipeline.
  }
  Result<std::vector<float>> samples = decoder_->DecodePacket(pending.payload);
  if (!samples.ok()) {
    ++stats_.decode_errors;
    queued_pcm_bytes_ -= pending.decoded_bytes;
    return;
  }
  OnDecodeComplete(pending.stream_id, pending.seq, pending.local_deadline,
                   std::move(*samples), pending.decoded_bytes, out_play);
}

void EthernetSpeaker::OnDecodeComplete(uint32_t stream_id, uint32_t seq,
                                       SimTime local_deadline,
                                       std::vector<float> samples,
                                       size_t decoded_bytes,
                                       PendingPlay* out_play) {
  if (recorder_ == nullptr) {
    queued_pcm_bytes_ -= decoded_bytes;
    return;  // Channel was re-tuned while the chunk was in the pipeline.
  }
  Trace(stream_id, seq, TraceStage::kDecodeDone);
  SimTime now = sim_->now();
  SimDuration lateness = now - local_deadline;
  if (options_.lateness_histogram != nullptr) {
    if (options_.tracer != nullptr && options_.tracer->has_observer()) {
      // With the span plane on, the observation carries the packet's trace
      // identity so the bucket's exemplar resolves to a retained span tree.
      options_.lateness_histogram->ObserveExemplar(
          ToMillisecondsF(lateness), PacketTraceId(stream_id, seq), now);
    } else {
      options_.lateness_histogram->Observe(ToMillisecondsF(lateness));
    }
  }
  if (lateness > options_.sync_epsilon) {
    // §3.2: throw away data up until the current wall time.
    queued_pcm_bytes_ -= decoded_bytes;
    ++stats_.late_drops;
    Trace(stream_id, seq, TraceStage::kDeadlineMiss);
    return;
  }
  if (lateness > 0) {
    // Within epsilon: play immediately, slightly late. Without this leeway
    // "data will be unnecessarily thrown out and skipping in playback will
    // be noticeable" (§3.2).
    queued_pcm_bytes_ -= decoded_bytes;
    stats_.total_lateness_ns += lateness;
    ++stats_.chunks_played;
    NotePlay(now, samples.size());
    Trace(stream_id, seq, TraceStage::kPlay);
    recorder_->Play(now, std::move(samples), options_.gain);
    return;
  }
  // Early: sleep until it is time to play. The chunk keeps occupying the
  // jitter buffer until it leaves the speaker.
  out_play->valid = true;
  out_play->at = local_deadline;
  out_play->stream_id = stream_id;
  out_play->seq = seq;
  out_play->samples = std::move(samples);
  out_play->decoded_bytes = decoded_bytes;
}

void EthernetSpeaker::RunPlay(PendingPlay play) {
  queued_pcm_bytes_ -= play.decoded_bytes;
  if (recorder_ == nullptr) {
    return;
  }
  ++stats_.chunks_played;
  NotePlay(play.at, play.samples.size());
  Trace(play.stream_id, play.seq, TraceStage::kPlay);
  recorder_->Play(play.at, std::move(play.samples), options_.gain);
}

}  // namespace espk
