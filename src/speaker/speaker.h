// The Ethernet Speaker (§2.4, §3.2): a receive-only device — "our Ethernet
// Speakers function like radios". It joins a channel's multicast group,
// waits for a control packet (it cannot decode anything before one arrives),
// adopts the producer's wall clock, and then plays each data packet at its
// deadline:
//
//   * packet early            -> sleep until deadline, then play
//   * packet within epsilon   -> play immediately (slightly late, inaudible)
//   * packet past epsilon     -> throw it away (§3.2: "throwing away data up
//                                until the current wall time")
//
// An epsilon of zero would discard data unnecessarily and make "skipping in
// playback noticeable" — bench C4 sweeps it.
//
// The decode stage is serialized and costs simulated time proportional to
// the audio duration (decode_speed_factor models the 233 MHz Geode of the
// Neoware EON 4000); large producer buffers therefore stall the pipeline
// exactly as §3.4 describes — bench C5 sweeps that.
//
// Beyond the paper's one-channel radio: a speaker holds a MAP of
// StreamSessions (src/speaker/stream_session.h), one per subscribed group,
// and may Subscribe/Unsubscribe at runtime. Per-stream state (sync, jitter
// accounting, decoder, output) lives in the session; the speaker keeps
// device-wide state only — the NIC, the serialized decode CPU, the shared
// jitter-buffer budget, and the aggregate stats. Concurrent subscriptions
// share the output stage via RenderMix. The paper's Tune/Untune survive as
// thin aliases over the subscription API.
#ifndef SRC_SPEAKER_SPEAKER_H_
#define SRC_SPEAKER_SPEAKER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/audio/format.h"
#include "src/base/buffer.h"
#include "src/codec/codec.h"
#include "src/lan/transport.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"
#include "src/speaker/playback.h"
#include "src/speaker/stream_session.h"

namespace espk {

class HistogramMetric;
class PacketTracer;
enum class TraceStage : uint8_t;

struct SpeakerOptions {
  std::string name = "es";
  // §3.2 leeway: how late a chunk may be and still be played.
  SimDuration sync_epsilon = Milliseconds(20);
  // Cap on decoded-but-not-yet-played PCM, shared across every
  // subscription. When a producer floods the LAN (rate limiter off), this
  // is the buffer that overflows (§3.1).
  size_t jitter_buffer_bytes = 2 * 1024 * 1024;
  // Decode time as a fraction of audio duration. ~0.25 models the EON
  // 4000's 233 MHz Geode on compressed CD audio; ~0.02 a workstation.
  double decode_speed_factor = 0.25;
  float gain = 1.0f;
  // §5.1 hook: return false to reject a packet (failed authentication).
  std::function<bool(const ParsedPacket&)> auth_verifier;
  // Extension beyond the paper: exponential smoothing of the producer-clock
  // offset across control packets. The paper adopts each control packet's
  // clock outright ("latest wins"), which is exact on a jitter-free LAN but
  // lets one delayed control packet shift the whole playout timeline. With
  // alpha in (0,1], offset_new = alpha*sample + (1-alpha)*offset. 1.0
  // reproduces the paper's behaviour exactly.
  double clock_smoothing_alpha = 1.0;

  // Observability hooks (src/obs), both optional and wired up by the
  // system: per-packet lifecycle tracing, and the distribution of how late
  // each chunk completed decode relative to its deadline (ms; negative =
  // early, > sync_epsilon = dropped).
  PacketTracer* tracer = nullptr;
  HistogramMetric* lateness_histogram = nullptr;
};

// A data packet that cleared admission (dedup, overflow, config checks) and
// now owes the pipeline a decode at `decode_done`. The classic path wraps
// one of these in its own scheduled event per packet; the sharded zone path
// (src/speaker/speaker_zone.h) groups the whole zone's same-instant decodes
// into ONE event — that batching is where the fleet runtime's per-speaker
// cost collapses. `valid` is false when the packet was dropped at admission.
// `group`/`session_epoch` route the obligation back to the session that
// issued it; a stale epoch (the group was unsubscribed mid-flight) makes
// the obligation a no-op.
struct PendingDecode {
  bool valid = false;
  SimTime decode_done = 0;
  GroupId group = 0;
  uint64_t session_epoch = 0;
  uint32_t stream_id = 0;
  uint32_t seq = 0;
  SimTime local_deadline = 0;
  BufferSlice payload;  // Zero-copy slice of the arrival buffer.
  size_t decoded_bytes = 0;
};

// A decoded chunk that arrived early and owes the pipeline a playout at
// `at` (its local deadline). Same batching and routing story as
// PendingDecode.
struct PendingPlay {
  bool valid = false;
  SimTime at = 0;
  GroupId group = 0;
  uint64_t session_epoch = 0;
  uint32_t stream_id = 0;
  uint32_t seq = 0;
  std::vector<float> samples;
  size_t decoded_bytes = 0;
};

struct SpeakerStats {
  uint64_t packets_received = 0;
  uint64_t control_packets = 0;
  uint64_t data_packets = 0;
  uint64_t bad_packets = 0;        // CRC/parse failures.
  uint64_t auth_rejected = 0;      // §5.1 verifier said no.
  uint64_t waiting_drops = 0;      // Data before the first control packet.
  uint64_t late_drops = 0;         // Past deadline + epsilon.
  uint64_t overflow_drops = 0;     // Jitter buffer full.
  uint64_t duplicate_drops = 0;    // Replayed/duplicated sequence numbers.
  uint64_t chunks_played = 0;
  uint64_t decode_errors = 0;
  // How late (ns) chunks that played within epsilon actually were.
  int64_t total_lateness_ns = 0;
  // Dead air: total gap (ns) between the end of one played chunk and the
  // start of the next within a subscription. Grows whenever a drop or
  // starvation leaves a hole in the playout timeline — the user-audible
  // failure the health layer alerts on.
  int64_t silence_ns = 0;
};

class EthernetSpeaker {
 public:
  EthernetSpeaker(Simulation* sim, Transport* nic,
                  const SpeakerOptions& options);
  ~EthernetSpeaker();

  // ------------------------------------------------- subscription surface --
  // Joins `group` and opens a fresh StreamSession for it. Fails if already
  // subscribed. Membership takes effect per the segment's join-latency knob
  // (SegmentConfig::join_latency); the session exists immediately.
  Status Subscribe(GroupId group);
  // Leaves `group` and tears the session down; in-flight pipeline
  // obligations for it become no-ops. Fails if not subscribed.
  Status Unsubscribe(GroupId group);
  // The paper's one-channel radio dial, kept as thin aliases: Tune drops
  // every current subscription, then subscribes to `group` alone.
  Status Tune(GroupId group);
  Status Untune();

  // Subscribed groups in subscription order. The first is the "primary"
  // whose stream the legacy single-channel accessors below expose.
  const std::vector<GroupId>& subscriptions() const {
    return subscribe_order_;
  }
  // Null when not subscribed to `group`.
  StreamSession* session(GroupId group);
  const StreamSession* session(GroupId group) const;
  // The primary subscription's group; empty when unsubscribed. (Historical
  // name: with several subscriptions this is the earliest-subscribed one.)
  std::optional<GroupId> tuned_group() const;

  const SpeakerStats& stats() const { return stats_; }
  const SpeakerOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }

  // Legacy single-stream accessors, delegating to the primary session.
  // Null / empty until the first control packet of the primary stream.
  OutputRecorder* output();
  const std::optional<AudioConfig>& config() const;
  // True once any session has seen its control packet.
  bool ready() const;

  // Volume control (§5.2 auto-volume adjusts this). Device-wide: applied to
  // every subscription at play time.
  void set_gain(float gain) { options_.gain = gain; }
  float gain() const { return options_.gain; }

  // Decoded-but-unplayed PCM currently occupying the jitter buffer, summed
  // over every subscription (the capacity in options().jitter_buffer_bytes
  // is a shared device budget).
  size_t queued_pcm_bytes() const;

  // Mixes every ready session over [from, from+duration] into one PCM
  // window: concurrently subscribed streams sum at the output stage, the
  // way a real device feeds one DAC. Sessions whose format differs from the
  // primary's are skipped (no resampler). Empty when nothing is ready.
  std::vector<float> RenderMix(SimTime from, SimDuration duration);

  Simulation* sim() { return sim_; }

  // Feeds a datagram as if it arrived on the NIC. The speaker installs
  // itself as the NIC's receive handler at construction; components that
  // share the NIC (e.g. the management agent) take the handler over and
  // forward non-management traffic here.
  void HandleDatagram(const Datagram& datagram) { OnDatagram(datagram); }

  // ------------------------------------------ batched pipeline surface --
  // The sharded zone path parses a multicast packet ONCE per zone and feeds
  // the shared result to every member through these three stages; the
  // classic per-datagram path (OnDatagram) is built from exactly the same
  // stages, so the two are behaviorally identical by construction — the
  // property the 1-shard-vs-N-shard determinism test pins.

  // Stage 1, at arrival time: admission (stats, auth, session routing by
  // the datagram's `group`, control handling, dedup/overflow checks). Fills
  // `*out` with the decode obligation for an admitted data packet;
  // out->valid stays false otherwise.
  void IngestParsed(const Result<ParsedPacket>& parsed, GroupId group,
                    PendingDecode* out);
  // Stage 2, at pending.decode_done: decode + deadline triage. An
  // early-arriving chunk becomes a playout obligation in `*out_play`;
  // on-time chunks play here, late ones drop here.
  void RunDecode(const PendingDecode& pending, PendingPlay* out_play);
  // Stage 3, at play.at: render an early chunk at its deadline.
  void RunPlay(PendingPlay play);

 private:
  friend class StreamSession;

  void OnDatagram(const Datagram& datagram);
  // Classic-path continuations: wrap a pending obligation in its own
  // scheduled event (the zone path groups instead).
  void CommitDecode(PendingDecode pending);
  void CommitPlay(PendingPlay play);
  void Trace(uint32_t stream_id, uint32_t seq, TraceStage stage);
  StreamSession* FindSession(GroupId group);
  StreamSession* primary();
  const StreamSession* primary() const;

  Simulation* sim_;
  Transport* nic_;
  SpeakerOptions options_;

  // Active subscriptions: group -> session, plus subscription order (the
  // front is the primary the legacy accessors expose).
  std::map<GroupId, std::unique_ptr<StreamSession>> sessions_;
  std::vector<GroupId> subscribe_order_;
  uint64_t next_session_epoch_ = 0;

  // Decode pipeline: ONE decode CPU per device, shared by every session —
  // serialized, busy until this instant.
  SimTime decode_busy_until_ = 0;

  // Returned by config() when no session is ready; always empty.
  std::optional<AudioConfig> no_config_;

  SpeakerStats stats_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_SPEAKER_H_
