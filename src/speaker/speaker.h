// The Ethernet Speaker (§2.4, §3.2): a receive-only device — "our Ethernet
// Speakers function like radios". It joins a channel's multicast group,
// waits for a control packet (it cannot decode anything before one arrives),
// adopts the producer's wall clock, and then plays each data packet at its
// deadline:
//
//   * packet early            -> sleep until deadline, then play
//   * packet within epsilon   -> play immediately (slightly late, inaudible)
//   * packet past epsilon     -> throw it away (§3.2: "throwing away data up
//                                until the current wall time")
//
// An epsilon of zero would discard data unnecessarily and make "skipping in
// playback noticeable" — bench C4 sweeps it.
//
// The decode stage is serialized and costs simulated time proportional to
// the audio duration (decode_speed_factor models the 233 MHz Geode of the
// Neoware EON 4000); large producer buffers therefore stall the pipeline
// exactly as §3.4 describes — bench C5 sweeps that.
#ifndef SRC_SPEAKER_SPEAKER_H_
#define SRC_SPEAKER_SPEAKER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/audio/format.h"
#include "src/base/buffer.h"
#include "src/codec/codec.h"
#include "src/lan/transport.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"
#include "src/speaker/playback.h"

namespace espk {

class HistogramMetric;
class PacketTracer;
enum class TraceStage : uint8_t;

struct SpeakerOptions {
  std::string name = "es";
  // §3.2 leeway: how late a chunk may be and still be played.
  SimDuration sync_epsilon = Milliseconds(20);
  // Cap on decoded-but-not-yet-played PCM. When a producer floods the LAN
  // (rate limiter off), this is the buffer that overflows (§3.1).
  size_t jitter_buffer_bytes = 2 * 1024 * 1024;
  // Decode time as a fraction of audio duration. ~0.25 models the EON
  // 4000's 233 MHz Geode on compressed CD audio; ~0.02 a workstation.
  double decode_speed_factor = 0.25;
  float gain = 1.0f;
  // §5.1 hook: return false to reject a packet (failed authentication).
  std::function<bool(const ParsedPacket&)> auth_verifier;
  // Extension beyond the paper: exponential smoothing of the producer-clock
  // offset across control packets. The paper adopts each control packet's
  // clock outright ("latest wins"), which is exact on a jitter-free LAN but
  // lets one delayed control packet shift the whole playout timeline. With
  // alpha in (0,1], offset_new = alpha*sample + (1-alpha)*offset. 1.0
  // reproduces the paper's behaviour exactly.
  double clock_smoothing_alpha = 1.0;

  // Observability hooks (src/obs), both optional and wired up by the
  // system: per-packet lifecycle tracing, and the distribution of how late
  // each chunk completed decode relative to its deadline (ms; negative =
  // early, > sync_epsilon = dropped).
  PacketTracer* tracer = nullptr;
  HistogramMetric* lateness_histogram = nullptr;
};

// A data packet that cleared admission (dedup, overflow, config checks) and
// now owes the pipeline a decode at `decode_done`. The classic path wraps
// one of these in its own scheduled event per packet; the sharded zone path
// (src/speaker/speaker_zone.h) groups the whole zone's same-instant decodes
// into ONE event — that batching is where the fleet runtime's per-speaker
// cost collapses. `valid` is false when the packet was dropped at admission.
struct PendingDecode {
  bool valid = false;
  SimTime decode_done = 0;
  uint32_t stream_id = 0;
  uint32_t seq = 0;
  SimTime local_deadline = 0;
  BufferSlice payload;  // Zero-copy slice of the arrival buffer.
  size_t decoded_bytes = 0;
};

// A decoded chunk that arrived early and owes the pipeline a playout at
// `at` (its local deadline). Same batching story as PendingDecode.
struct PendingPlay {
  bool valid = false;
  SimTime at = 0;
  uint32_t stream_id = 0;
  uint32_t seq = 0;
  std::vector<float> samples;
  size_t decoded_bytes = 0;
};

struct SpeakerStats {
  uint64_t packets_received = 0;
  uint64_t control_packets = 0;
  uint64_t data_packets = 0;
  uint64_t bad_packets = 0;        // CRC/parse failures.
  uint64_t auth_rejected = 0;      // §5.1 verifier said no.
  uint64_t waiting_drops = 0;      // Data before the first control packet.
  uint64_t late_drops = 0;         // Past deadline + epsilon.
  uint64_t overflow_drops = 0;     // Jitter buffer full.
  uint64_t duplicate_drops = 0;    // Replayed/duplicated sequence numbers.
  uint64_t chunks_played = 0;
  uint64_t decode_errors = 0;
  // How late (ns) chunks that played within epsilon actually were.
  int64_t total_lateness_ns = 0;
  // Dead air: total gap (ns) between the end of one played chunk and the
  // start of the next within a tune. Grows whenever a drop or starvation
  // leaves a hole in the playout timeline — the user-audible failure the
  // health layer alerts on.
  int64_t silence_ns = 0;
};

class EthernetSpeaker {
 public:
  EthernetSpeaker(Simulation* sim, Transport* nic,
                  const SpeakerOptions& options);

  // Joins a channel group and starts listening ("tunes in", §2.3). Any
  // previous channel is left and playback state reset.
  Status Tune(GroupId group);
  Status Untune();
  std::optional<GroupId> tuned_group() const { return group_; }

  const SpeakerStats& stats() const { return stats_; }
  const SpeakerOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }

  // Null until the first control packet of the current tune.
  OutputRecorder* output() { return recorder_.get(); }
  const std::optional<AudioConfig>& config() const { return config_; }
  bool ready() const { return config_.has_value(); }

  // Volume control (§5.2 auto-volume adjusts this).
  void set_gain(float gain) { options_.gain = gain; }
  float gain() const { return options_.gain; }

  // Decoded-but-unplayed PCM currently occupying the jitter buffer.
  size_t queued_pcm_bytes() const { return queued_pcm_bytes_; }

  Simulation* sim() { return sim_; }

  // Feeds a datagram as if it arrived on the NIC. The speaker installs
  // itself as the NIC's receive handler at construction; components that
  // share the NIC (e.g. the management agent) take the handler over and
  // forward non-management traffic here.
  void HandleDatagram(const Datagram& datagram) { OnDatagram(datagram); }

  // ------------------------------------------ batched pipeline surface --
  // The sharded zone path parses a multicast packet ONCE per zone and feeds
  // the shared result to every member through these three stages; the
  // classic per-datagram path (OnDatagram) is built from exactly the same
  // stages, so the two are behaviorally identical by construction — the
  // property the 1-shard-vs-N-shard determinism test pins.

  // Stage 1, at arrival time: admission (stats, auth, control handling,
  // dedup/overflow checks). Fills `*out` with the decode obligation for an
  // admitted data packet; out->valid stays false otherwise.
  void IngestParsed(const Result<ParsedPacket>& parsed, PendingDecode* out);
  // Stage 2, at pending.decode_done: decode + deadline triage. An
  // early-arriving chunk becomes a playout obligation in `*out_play`;
  // on-time chunks play here, late ones drop here.
  void RunDecode(const PendingDecode& pending, PendingPlay* out_play);
  // Stage 3, at play.at: render an early chunk at its deadline.
  void RunPlay(PendingPlay play);

 private:
  void OnDatagram(const Datagram& datagram);
  void HandleControl(const ControlPacket& packet);
  void HandleData(const DataPacket& packet, PendingDecode* out);
  // Classic-path continuations: wrap a pending obligation in its own
  // scheduled event (the zone path groups instead).
  void CommitDecode(PendingDecode pending);
  void CommitPlay(PendingPlay play);
  void OnDecodeComplete(uint32_t stream_id, uint32_t seq,
                        SimTime local_deadline, std::vector<float> samples,
                        size_t decoded_bytes, PendingPlay* out_play);
  void Trace(uint32_t stream_id, uint32_t seq, TraceStage stage);
  // Accounts playout-timeline gaps: a chunk of `sample_count` samples
  // started rendering at `at`.
  void NotePlay(SimTime at, size_t sample_count);
  void ResetChannelState();

  Simulation* sim_;
  Transport* nic_;
  SpeakerOptions options_;
  std::optional<GroupId> group_;

  // Channel state, valid once a control packet has arrived.
  std::optional<AudioConfig> config_;
  CodecId codec_ = CodecId::kRaw;
  uint8_t quality_ = 10;
  std::unique_ptr<AudioDecoder> decoder_;
  std::unique_ptr<OutputRecorder> recorder_;
  uint32_t control_seq_ = 0;

  // Producer-clock to local-clock offset: local = producer + offset. The
  // protocol assumes uniform multicast delivery, so the offset is taken
  // directly from the latest control packet (§3.2).
  SimDuration clock_offset_ = 0;

  // Decode pipeline: serialized, busy until this instant.
  SimTime decode_busy_until_ = 0;

  // Decoded PCM scheduled for playback but not yet played, in bytes.
  size_t queued_pcm_bytes_ = 0;
  uint32_t highest_seq_seen_ = 0;
  bool any_data_seen_ = false;
  // When the previously played chunk finishes rendering; 0 until the first
  // play of the current tune.
  SimTime last_play_end_ = 0;

  SpeakerStats stats_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_SPEAKER_H_
