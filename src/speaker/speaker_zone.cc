#include "src/speaker/speaker_zone.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace espk {

int SpeakerZone::AddSpeaker(SimNic* nic, EthernetSpeaker* speaker) {
  members_.push_back(Member{nic, speaker});
  return static_cast<int>(members_.size()) - 1;
}

void SpeakerZone::DeliverBatch(const Datagram& datagram,
                               std::vector<ZoneDeliveryEntry> entries) {
  // Parse ONCE for the whole zone. ParsePacket is a pure function of the
  // payload bytes, so the shared result is byte-identical to what each
  // member's classic per-speaker parse would have produced.
  Result<ParsedPacket> parsed = ParsePacket(datagram.payload);
  const SimTime now = sim_->now();
  std::vector<DecodeJob> jobs;
  jobs.reserve(entries.size());
  for (const ZoneDeliveryEntry& entry : entries) {
    const Member& member = members_[static_cast<size_t>(entry.member)];
    if (entry.arrival <= now) {
      Ingest(member, datagram, parsed, &jobs);
      continue;
    }
    // Jitter pushed this member's arrival past the batch instant: fall back
    // to one event for it, still reusing the shared parse and payload.
    sim_->ScheduleAt(entry.arrival,
                     [this, index = entry.member, datagram, parsed] {
                       std::vector<DecodeJob> late_jobs;
                       Ingest(members_[static_cast<size_t>(index)], datagram,
                              parsed, &late_jobs);
                       ScheduleDecodeGroups(std::move(late_jobs));
                     });
  }
  ScheduleDecodeGroups(std::move(jobs));
}

void SpeakerZone::Ingest(const Member& member, const Datagram& datagram,
                         const Result<ParsedPacket>& parsed,
                         std::vector<DecodeJob>* jobs) {
  member.nic->NoteZoneDelivery(datagram.payload.size());
  PendingDecode pending;
  member.speaker->IngestParsed(parsed, datagram.group, &pending);
  if (pending.valid) {
    jobs->push_back(DecodeJob{member.speaker, std::move(pending)});
  }
}

void SpeakerZone::ScheduleDecodeGroups(std::vector<DecodeJob> jobs) {
  if (jobs.empty()) {
    return;
  }
  // Jitter-free common case: every member saw the same arrival and carries
  // the same decode backlog, so the whole batch shares one decode instant.
  // Schedule it as a single group without sorting or re-slicing — this is
  // the path the fleet bench's throughput claim rests on.
  bool uniform = true;
  for (size_t k = 1; k < jobs.size(); ++k) {
    if (jobs[k].pending.decode_done != jobs[0].pending.decode_done) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    const SimTime at = jobs[0].pending.decode_done;
    sim_->ScheduleAt(at, [this, group = std::move(jobs)]() mutable {
      RunDecodeGroup(std::move(group));
    });
    return;
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const DecodeJob& a, const DecodeJob& b) {
                     return a.pending.decode_done < b.pending.decode_done;
                   });
  size_t i = 0;
  while (i < jobs.size()) {
    size_t j = i + 1;
    while (j < jobs.size() &&
           jobs[j].pending.decode_done == jobs[i].pending.decode_done) {
      ++j;
    }
    const SimTime at = jobs[i].pending.decode_done;
    std::vector<DecodeJob> group(
        std::make_move_iterator(jobs.begin() + static_cast<ptrdiff_t>(i)),
        std::make_move_iterator(jobs.begin() + static_cast<ptrdiff_t>(j)));
    sim_->ScheduleAt(at, [this, group = std::move(group)]() mutable {
      RunDecodeGroup(std::move(group));
    });
    i = j;
  }
}

void SpeakerZone::RunDecodeGroup(std::vector<DecodeJob> jobs) {
  std::vector<PlayJob> plays;
  plays.reserve(jobs.size());
  for (DecodeJob& job : jobs) {
    PendingPlay play;
    job.speaker->RunDecode(job.pending, &play);
    if (play.valid) {
      plays.push_back(PlayJob{job.speaker, std::move(play)});
    }
  }
  SchedulePlayGroups(std::move(plays));
}

void SpeakerZone::SchedulePlayGroups(std::vector<PlayJob> jobs) {
  if (jobs.empty()) {
    return;
  }
  // Same single-instant fast path as ScheduleDecodeGroups: one shared play
  // deadline per batch unless jitter or divergent backlogs split it.
  bool uniform = true;
  for (size_t k = 1; k < jobs.size(); ++k) {
    if (jobs[k].play.at != jobs[0].play.at) {
      uniform = false;
      break;
    }
  }
  if (uniform) {
    const SimTime at = jobs[0].play.at;
    sim_->ScheduleAt(at, [group = std::move(jobs)]() mutable {
      for (PlayJob& job : group) {
        job.speaker->RunPlay(std::move(job.play));
      }
    });
    return;
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const PlayJob& a, const PlayJob& b) {
                     return a.play.at < b.play.at;
                   });
  size_t i = 0;
  while (i < jobs.size()) {
    size_t j = i + 1;
    while (j < jobs.size() && jobs[j].play.at == jobs[i].play.at) {
      ++j;
    }
    const SimTime at = jobs[i].play.at;
    std::vector<PlayJob> group(
        std::make_move_iterator(jobs.begin() + static_cast<ptrdiff_t>(i)),
        std::make_move_iterator(jobs.begin() + static_cast<ptrdiff_t>(j)));
    sim_->ScheduleAt(at, [group = std::move(group)]() mutable {
      for (PlayJob& job : group) {
        job.speaker->RunPlay(std::move(job.play));
      }
    });
    i = j;
  }
}

}  // namespace espk
