// SpeakerZone: one shard's batch receiver for the fleet-scale runtime.
//
// The classic delivery path costs one scheduled event + one packet parse
// per speaker per packet. A zone collapses that to per-PACKET cost: the
// segment hands the zone ONE message carrying the shared payload slice and
// a member list (src/lan/segment.h ZoneSink); the zone parses once, runs
// every member's admission stage inline, then schedules ONE event per
// distinct decode-completion instant and ONE per distinct playout instant
// for the whole zone. On a symmetric fleet (same codec config, idle
// pipelines) those instants coincide across members, so a 1000-speaker
// zone rides three events per packet instead of three thousand.
//
// Every member stage is the speaker's own batched pipeline surface
// (IngestParsed / RunDecode / RunPlay — src/speaker/speaker.h), the same
// stages the classic path wraps one-per-event, so zone playback is
// behaviorally identical to classic playback by construction.
//
// A zone is NOT one stream: the segment filters each transmission by group
// membership before batching, so a batch's entry list is exactly the
// (group -> member-speaker subset) of this zone subscribed to the packet's
// group, and each member routes the parse result to its own per-group
// StreamSession. Zones with members on several channels ride the same
// batched path with no extra events.
#ifndef SRC_SPEAKER_SPEAKER_ZONE_H_
#define SRC_SPEAKER_SPEAKER_ZONE_H_

#include <vector>

#include "src/lan/segment.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"
#include "src/speaker/speaker.h"

namespace espk {

class SpeakerZone : public ZoneSink {
 public:
  explicit SpeakerZone(Simulation* sim) : sim_(sim) {}

  // Registers a member and returns its index (the `member` tag the segment
  // stamps on deliveries via AssignZone). The zone borrows both pointers;
  // the caller keeps them alive for the zone's lifetime.
  int AddSpeaker(SimNic* nic, EthernetSpeaker* speaker);
  size_t size() const { return members_.size(); }

  // ZoneSink: runs on this zone's shard at the batch's earliest arrival.
  void DeliverBatch(const Datagram& datagram,
                    std::vector<ZoneDeliveryEntry> entries) override;

 private:
  struct Member {
    SimNic* nic = nullptr;
    EthernetSpeaker* speaker = nullptr;
  };
  struct DecodeJob {
    EthernetSpeaker* speaker = nullptr;
    PendingDecode pending;
  };
  struct PlayJob {
    EthernetSpeaker* speaker = nullptr;
    PendingPlay play;
  };

  // Admission for one member at its arrival instant; appends the decode
  // obligation (if the packet was accepted) to `jobs`.
  void Ingest(const Member& member, const Datagram& datagram,
              const Result<ParsedPacket>& parsed, std::vector<DecodeJob>* jobs);
  // Groups jobs by decode_done / play-at instant and schedules one event
  // per distinct instant — the zone path's whole reason to exist.
  void ScheduleDecodeGroups(std::vector<DecodeJob> jobs);
  void RunDecodeGroup(std::vector<DecodeJob> jobs);
  void SchedulePlayGroups(std::vector<PlayJob> jobs);

  Simulation* sim_;
  std::vector<Member> members_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_SPEAKER_ZONE_H_
