#include "src/speaker/stream_session.h"

#include <algorithm>
#include <utility>

#include "src/base/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/speaker/speaker.h"

namespace espk {

StreamSession::StreamSession(EthernetSpeaker* speaker, GroupId group,
                             uint64_t epoch)
    : speaker_(speaker), group_(group), epoch_(epoch) {}

StreamSession::~StreamSession() = default;

void StreamSession::NotePlay(SimTime at, size_t sample_count) {
  if (last_play_end_ != 0 && at > last_play_end_) {
    speaker_->stats_.silence_ns += at - last_play_end_;
  }
  if (config_.has_value() && config_->sample_rate > 0 &&
      config_->channels > 0) {
    const int64_t frames =
        static_cast<int64_t>(sample_count / config_->channels);
    last_play_end_ = at + frames * 1'000'000'000 / config_->sample_rate;
  } else {
    last_play_end_ = at;
  }
}

void StreamSession::HandleControl(const ControlPacket& packet) {
  ++speaker_->stats_.control_packets;
  SimTime now = speaker_->sim_->now();
  // Adopt the producer's wall clock. Transmission latency is deliberately
  // ignored — the §3.2 uniform-delivery assumption. With smoothing enabled
  // (an extension), jittered control arrivals average out instead of each
  // one yanking the timeline.
  SimDuration sample = now - packet.producer_clock;
  if (!config_.has_value() ||
      speaker_->options_.clock_smoothing_alpha >= 1.0) {
    clock_offset_ = sample;
  } else {
    double alpha = speaker_->options_.clock_smoothing_alpha;
    clock_offset_ = static_cast<SimDuration>(
        alpha * static_cast<double>(sample) +
        (1.0 - alpha) * static_cast<double>(clock_offset_));
  }

  bool config_changed = !config_.has_value() || *config_ != packet.config ||
                        codec_ != packet.codec ||
                        control_seq_ != packet.control_seq;
  if (!config_changed) {
    return;
  }
  Result<std::unique_ptr<AudioDecoder>> decoder =
      CreateDecoder(packet.codec, packet.config, packet.quality);
  if (!decoder.ok()) {
    ESPK_LOG(kWarning) << speaker_->options_.name
                       << ": unusable control packet: " << decoder.status();
    return;
  }
  config_ = packet.config;
  codec_ = packet.codec;
  quality_ = packet.quality;
  control_seq_ = packet.control_seq;
  decoder_ = std::move(*decoder);
  // A genuine config change restarts the output epoch; periodic control
  // repeats (same control_seq) never get here.
  recorder_ = std::make_unique<OutputRecorder>(config_->sample_rate,
                                               config_->channels);
  ESPK_LOG(kDebug) << speaker_->options_.name << ": tuned group " << group_
                   << ", config " << config_->ToString();
}

void StreamSession::HandleData(const DataPacket& packet, PendingDecode* out) {
  ++speaker_->stats_.data_packets;
  ++stats_.data_packets;
  speaker_->Trace(packet.stream_id, packet.seq, TraceStage::kSpeakerReceive);
  if (!config_.has_value()) {
    // §2.3: "The Ethernet Speaker has to wait till it receives a control
    // packet before it can start playing the audio stream."
    ++speaker_->stats_.waiting_drops;
    return;
  }
  if (any_data_seen_ && packet.seq <= highest_seq_seen_ &&
      highest_seq_seen_ - packet.seq < 1000) {
    ++speaker_->stats_.duplicate_drops;
    return;
  }
  any_data_seen_ = true;
  highest_seq_seen_ = std::max(highest_seq_seen_, packet.seq);

  // Buffer accounting uses the decoded size; refuse when full (§3.1 — this
  // is the buffer a non-rate-limited producer overflows). The capacity is a
  // device budget shared by every subscription, so the check runs against
  // the speaker-wide total, not this session's share.
  const size_t decoded_bytes = static_cast<size_t>(packet.frame_count) *
                               static_cast<size_t>(config_->channels) *
                               sizeof(float);
  if (speaker_->queued_pcm_bytes() + decoded_bytes >
      speaker_->options_.jitter_buffer_bytes) {
    ++speaker_->stats_.overflow_drops;
    return;
  }

  SimTime now = speaker_->sim_->now();
  SimTime local_deadline = packet.play_deadline + clock_offset_;

  // Serialized decode pipeline with CPU cost proportional to audio
  // duration (§3.4: the slow EON 4000 decode stage). The decode CPU is the
  // device's, shared across subscriptions, so the busy horizon lives on
  // the speaker.
  SimDuration audio_duration =
      FramesToDuration(packet.frame_count, config_->sample_rate);
  auto decode_time = static_cast<SimDuration>(
      static_cast<double>(audio_duration) *
      speaker_->options_.decode_speed_factor);
  SimTime decode_start = std::max(now, speaker_->decode_busy_until_);
  SimTime decode_done = decode_start + decode_time;
  speaker_->decode_busy_until_ = decode_done;
  if (speaker_->options_.tracer != nullptr &&
      speaker_->options_.tracer->span_stages_enabled()) {
    // Span-plane stage: separates jitter-buffer dwell (receive ->
    // decode_start) from decode itself. decode_start may be in the future
    // when the serialized pipeline is busy, hence RecordAt.
    speaker_->options_.tracer->RecordAt(packet.stream_id, packet.seq,
                                        TraceStage::kDecodeStart,
                                        speaker_->nic_->node_id(),
                                        decode_start);
  }

  // The packet occupies the jitter buffer from arrival; the payload rides
  // the pipeline as a slice of the arrival buffer (no copy, and the slice
  // keeps that buffer alive) until the decode stage actually runs.
  queued_pcm_bytes_ += decoded_bytes;
  out->valid = true;
  out->decode_done = decode_done;
  out->group = group_;
  out->session_epoch = epoch_;
  out->stream_id = packet.stream_id;
  out->seq = packet.seq;
  out->local_deadline = local_deadline;
  out->payload = packet.payload;
  out->decoded_bytes = decoded_bytes;
}

void StreamSession::RunDecode(const PendingDecode& pending,
                              PendingPlay* out_play) {
  if (decoder_ == nullptr || recorder_ == nullptr) {
    queued_pcm_bytes_ -= pending.decoded_bytes;
    return;  // Cannot happen after admission; kept as a defensive mirror.
  }
  Result<std::vector<float>> samples = decoder_->DecodePacket(pending.payload);
  if (!samples.ok()) {
    ++speaker_->stats_.decode_errors;
    queued_pcm_bytes_ -= pending.decoded_bytes;
    return;
  }
  OnDecodeComplete(pending.stream_id, pending.seq, pending.local_deadline,
                   std::move(*samples), pending.decoded_bytes, out_play);
}

void StreamSession::OnDecodeComplete(uint32_t stream_id, uint32_t seq,
                                     SimTime local_deadline,
                                     std::vector<float> samples,
                                     size_t decoded_bytes,
                                     PendingPlay* out_play) {
  speaker_->Trace(stream_id, seq, TraceStage::kDecodeDone);
  SimTime now = speaker_->sim_->now();
  SimDuration lateness = now - local_deadline;
  if (speaker_->options_.lateness_histogram != nullptr) {
    if (speaker_->options_.tracer != nullptr &&
        speaker_->options_.tracer->span_stages_enabled()) {
      // With the span plane on, the observation carries the packet's trace
      // identity so the bucket's exemplar resolves to a retained span tree.
      speaker_->options_.lateness_histogram->ObserveExemplar(
          ToMillisecondsF(lateness), PacketTraceId(stream_id, seq), now);
    } else {
      speaker_->options_.lateness_histogram->Observe(
          ToMillisecondsF(lateness));
    }
  }
  if (lateness > speaker_->options_.sync_epsilon) {
    // §3.2: throw away data up until the current wall time.
    queued_pcm_bytes_ -= decoded_bytes;
    ++speaker_->stats_.late_drops;
    ++stats_.late_drops;
    speaker_->Trace(stream_id, seq, TraceStage::kDeadlineMiss);
    return;
  }
  if (lateness > 0) {
    // Within epsilon: play immediately, slightly late. Without this leeway
    // "data will be unnecessarily thrown out and skipping in playback will
    // be noticeable" (§3.2).
    queued_pcm_bytes_ -= decoded_bytes;
    speaker_->stats_.total_lateness_ns += lateness;
    ++speaker_->stats_.chunks_played;
    ++stats_.chunks_played;
    NotePlay(now, samples.size());
    speaker_->Trace(stream_id, seq, TraceStage::kPlay);
    recorder_->Play(now, std::move(samples), speaker_->options_.gain);
    return;
  }
  // Early: sleep until it is time to play. The chunk keeps occupying the
  // jitter buffer until it leaves the speaker.
  out_play->valid = true;
  out_play->at = local_deadline;
  out_play->group = group_;
  out_play->session_epoch = epoch_;
  out_play->stream_id = stream_id;
  out_play->seq = seq;
  out_play->samples = std::move(samples);
  out_play->decoded_bytes = decoded_bytes;
}

void StreamSession::RunPlay(PendingPlay play) {
  queued_pcm_bytes_ -= play.decoded_bytes;
  if (recorder_ == nullptr) {
    return;
  }
  ++speaker_->stats_.chunks_played;
  ++stats_.chunks_played;
  NotePlay(play.at, play.samples.size());
  speaker_->Trace(play.stream_id, play.seq, TraceStage::kPlay);
  recorder_->Play(play.at, std::move(play.samples), speaker_->options_.gain);
}

}  // namespace espk
