// StreamSession: the per-stream half of an Ethernet Speaker. One session
// exists per subscribed multicast group and owns everything that belongs to
// that stream alone — the control-packet sync state (adopted producer
// clock, codec config, decoder), the output recorder, jitter-buffer
// accounting, dedup history, and deadline/silence bookkeeping. The speaker
// itself (src/speaker/speaker.h) keeps only device-wide state: the NIC, the
// serialized decode CPU, the aggregate SpeakerStats, and the subscription
// map routing each arriving datagram's group to its session.
//
// A speaker subscribed to exactly one stream behaves bit-identically to the
// pre-session speaker: every stage below is the old single-stream code with
// its state relocated, and tests/sharded_determinism_test.cc pins it.
#ifndef SRC_SPEAKER_STREAM_SESSION_H_
#define SRC_SPEAKER_STREAM_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/audio/format.h"
#include "src/codec/codec.h"
#include "src/lan/transport.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"
#include "src/speaker/playback.h"

namespace espk {

class EthernetSpeaker;
struct PendingDecode;
struct PendingPlay;

// Counters one subscription accumulates on top of the speaker's aggregate
// SpeakerStats (which single-stream tests and the health rules watch). The
// subscription directory's who-hears-what view reads these.
struct StreamSessionStats {
  uint64_t data_packets = 0;
  uint64_t chunks_played = 0;
  uint64_t late_drops = 0;
};

class StreamSession {
 public:
  StreamSession(EthernetSpeaker* speaker, GroupId group, uint64_t epoch);
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  GroupId group() const { return group_; }
  // Reincarnation counter: a pipeline obligation issued by session N of a
  // group is ignored once session N+1 exists (the group was unsubscribed
  // and re-subscribed while the chunk was in flight).
  uint64_t epoch() const { return epoch_; }

  // Null / empty until the stream's first control packet.
  bool ready() const { return config_.has_value(); }
  const std::optional<AudioConfig>& config() const { return config_; }
  OutputRecorder* output() { return recorder_.get(); }
  const OutputRecorder* output() const { return recorder_.get(); }

  // Decoded-but-unplayed PCM this stream holds in the shared jitter buffer.
  size_t queued_pcm_bytes() const { return queued_pcm_bytes_; }
  const StreamSessionStats& stats() const { return stats_; }

  // Pipeline stages, driven by the owning speaker's batched surface
  // (src/speaker/speaker.h): admission at arrival, decode + deadline triage
  // at decode-done, render at the play deadline.
  void HandleControl(const ControlPacket& packet);
  void HandleData(const DataPacket& packet, PendingDecode* out);
  void RunDecode(const PendingDecode& pending, PendingPlay* out_play);
  void RunPlay(PendingPlay play);

 private:
  void OnDecodeComplete(uint32_t stream_id, uint32_t seq,
                        SimTime local_deadline, std::vector<float> samples,
                        size_t decoded_bytes, PendingPlay* out_play);
  // Accounts playout-timeline gaps: a chunk of `sample_count` samples
  // started rendering at `at`.
  void NotePlay(SimTime at, size_t sample_count);

  EthernetSpeaker* speaker_;
  GroupId group_;
  uint64_t epoch_;

  // Channel state, valid once a control packet has arrived.
  std::optional<AudioConfig> config_;
  CodecId codec_ = CodecId::kRaw;
  uint8_t quality_ = 10;
  std::unique_ptr<AudioDecoder> decoder_;
  std::unique_ptr<OutputRecorder> recorder_;
  uint32_t control_seq_ = 0;

  // Producer-clock to local-clock offset: local = producer + offset. The
  // protocol assumes uniform multicast delivery, so the offset is taken
  // directly from the latest control packet (§3.2). Per stream: each
  // producer has its own wall clock.
  SimDuration clock_offset_ = 0;

  // Decoded PCM scheduled for playback but not yet played, in bytes.
  size_t queued_pcm_bytes_ = 0;
  uint32_t highest_seq_seen_ = 0;
  bool any_data_seen_ = false;
  // When the previously played chunk finishes rendering; 0 until the first
  // play of this subscription.
  SimTime last_play_end_ = 0;

  StreamSessionStats stats_;
};

}  // namespace espk

#endif  // SRC_SPEAKER_STREAM_SESSION_H_
