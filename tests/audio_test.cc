#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "src/audio/analysis.h"
#include "src/audio/format.h"
#include "src/audio/generator.h"
#include "src/audio/pcm.h"
#include "src/audio/sample_convert.h"
#include "src/audio/wav.h"
#include "src/base/prng.h"

namespace espk {
namespace {

// ---------------------------------------------------------------- Format --

TEST(AudioConfigTest, CdQualityNumbers) {
  AudioConfig cd = AudioConfig::CdQuality();
  EXPECT_EQ(cd.bytes_per_frame(), 4);
  EXPECT_EQ(cd.bytes_per_second(), 176400);
  // The paper's "around 1.3Mbps for CD-quality audio" (§2.2): raw payload is
  // 1.41 Mbps; with protocol overhead it lands in the 1.3-1.5 Mbps range.
  EXPECT_NEAR(cd.bits_per_second(), 1.41e6, 0.01e6);
}

TEST(AudioConfigTest, PhoneQualityIs64kbps) {
  AudioConfig phone = AudioConfig::PhoneQuality();
  EXPECT_EQ(phone.bytes_per_second(), 8000);
  EXPECT_DOUBLE_EQ(phone.bits_per_second(), 64000.0);
}

TEST(AudioConfigTest, ValidateRejectsBadValues) {
  AudioConfig c = AudioConfig::CdQuality();
  EXPECT_TRUE(c.Validate().ok());
  c.sample_rate = 100;
  EXPECT_FALSE(c.Validate().ok());
  c = AudioConfig::CdQuality();
  c.channels = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = AudioConfig::CdQuality();
  c.channels = 9;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(AudioConfigTest, SerializeRoundTrip) {
  AudioConfig c{48000, 2, AudioEncoding::kLinearS24};
  ByteWriter w;
  c.Serialize(&w);
  Bytes buf = w.TakeBytes();
  ByteReader r(buf);
  Result<AudioConfig> back = AudioConfig::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, c);
}

TEST(AudioConfigTest, DeserializeRejectsUnknownEncoding) {
  ByteWriter w;
  w.WriteU32(44100);
  w.WriteU8(2);
  w.WriteU8(200);  // Bogus encoding.
  Bytes buf = w.TakeBytes();
  ByteReader r(buf);
  EXPECT_FALSE(AudioConfig::Deserialize(&r).ok());
}

TEST(AudioConfigTest, DurationConversions) {
  AudioConfig cd = AudioConfig::CdQuality();
  EXPECT_EQ(cd.BytesToDuration(176400), kSecond);
  EXPECT_EQ(cd.DurationToBytes(kSecond), 176400);
  EXPECT_EQ(cd.BytesToFrames(176400), 44100);
}

// --------------------------------------------------------------- Company --

TEST(MulawTest, RoundTripIsCloseForAllCodes) {
  // Decode then re-encode must reproduce the same linear value. (Code
  // identity does not hold for all 256 codes: mu-law has both +0 and -0,
  // which decode to the same linear 0.)
  for (int code = 0; code < 256; ++code) {
    int16_t linear = MulawToLinear(static_cast<uint8_t>(code));
    uint8_t back = LinearToMulaw(linear);
    EXPECT_EQ(MulawToLinear(back), linear)
        << "code " << code << " linear " << linear;
  }
}

TEST(MulawTest, KnownAnchors) {
  // Zero encodes to 0xFF (all bits inverted).
  EXPECT_EQ(LinearToMulaw(0), 0xFF);
  EXPECT_EQ(MulawToLinear(0xFF), 0);
  // Sign symmetry within quantization error.
  for (int16_t v : {100, 1000, 10000, 30000}) {
    int16_t pos = MulawToLinear(LinearToMulaw(v));
    int16_t neg = MulawToLinear(LinearToMulaw(static_cast<int16_t>(-v)));
    EXPECT_EQ(pos, -neg);
  }
}

// The shipped converters are table lookups (256-entry decode, 16K-entry
// encode indexed by magnitude >> 1); the constexpr segment-walking reference
// implementations live in sample_convert.h. These sweeps prove the tables
// equal the reference for every representable input — all 65536 linear
// samples and all 256 codes, both laws — so the >>1 index compression
// really is lossless.

TEST(MulawTest, EncodeTableMatchesReferenceExhaustively) {
  for (int s = -32768; s <= 32767; ++s) {
    const auto sample = static_cast<int16_t>(s);
    ASSERT_EQ(LinearToMulaw(sample), LinearToMulawReference(sample))
        << "sample " << s;
  }
}

TEST(MulawTest, DecodeTableMatchesReferenceForAllCodes) {
  for (int code = 0; code < 256; ++code) {
    const auto c = static_cast<uint8_t>(code);
    ASSERT_EQ(MulawToLinear(c), MulawToLinearReference(c)) << "code " << code;
  }
}

TEST(AlawTest, EncodeTableMatchesReferenceExhaustively) {
  for (int s = -32768; s <= 32767; ++s) {
    const auto sample = static_cast<int16_t>(s);
    ASSERT_EQ(LinearToAlaw(sample), LinearToAlawReference(sample))
        << "sample " << s;
  }
}

TEST(AlawTest, DecodeTableMatchesReferenceForAllCodes) {
  for (int code = 0; code < 256; ++code) {
    const auto c = static_cast<uint8_t>(code);
    ASSERT_EQ(AlawToLinear(c), AlawToLinearReference(c)) << "code " << code;
  }
}

TEST(MulawTest, MonotoneOverPositiveRange) {
  int16_t prev = MulawToLinear(LinearToMulaw(0));
  for (int v = 0; v <= 32000; v += 97) {
    int16_t now = MulawToLinear(LinearToMulaw(static_cast<int16_t>(v)));
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(MulawTest, QuantizationErrorIsLogarithmic) {
  // Relative error should stay under ~6% for large amplitudes.
  for (int v = 1000; v <= 32000; v += 501) {
    int16_t rt = MulawToLinear(LinearToMulaw(static_cast<int16_t>(v)));
    EXPECT_NEAR(rt, v, v * 0.06 + 16.0);
  }
}

TEST(AlawTest, RoundTripIsStableForAllCodes) {
  for (int code = 0; code < 256; ++code) {
    int16_t linear = AlawToLinear(static_cast<uint8_t>(code));
    uint8_t back = LinearToAlaw(linear);
    EXPECT_EQ(back, code) << "code " << code << " linear " << linear;
  }
}

TEST(AlawTest, QuantizationErrorBounded) {
  for (int v = -32000; v <= 32000; v += 997) {
    int16_t rt = AlawToLinear(LinearToAlaw(static_cast<int16_t>(v)));
    EXPECT_NEAR(rt, v, std::abs(v) * 0.06 + 40.0);
  }
}

// ------------------------------------------------------- Sample encoding --

class EncodingRoundTrip : public ::testing::TestWithParam<AudioEncoding> {};

TEST_P(EncodingRoundTrip, FloatRoundTripWithinTolerance) {
  AudioEncoding enc = GetParam();
  std::vector<float> in;
  for (int i = -100; i <= 100; ++i) {
    in.push_back(static_cast<float>(i) / 100.0f * 0.99f);
  }
  Bytes wire = EncodeFromFloat(in, enc);
  EXPECT_EQ(wire.size(), in.size() * static_cast<size_t>(BytesPerSample(enc)));
  std::vector<float> out = DecodeToFloat(wire, enc);
  ASSERT_EQ(out.size(), in.size());
  // Tolerance by precision: companded 8-bit is coarse at large amplitude.
  for (size_t i = 0; i < in.size(); ++i) {
    float tol;
    switch (enc) {
      case AudioEncoding::kLinearS16:
        tol = 1.0f / 32000.0f;
        break;
      case AudioEncoding::kLinearS24:
        tol = 1.0f / 8000000.0f;
        break;
      case AudioEncoding::kLinearU8:
        tol = 1.0f / 120.0f;
        break;
      default:  // companded
        tol = std::max(0.004f, std::fabs(in[i]) * 0.07f);
    }
    EXPECT_NEAR(out[i], in[i], tol) << AudioEncodingName(enc) << " @" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, EncodingRoundTrip,
                         ::testing::Values(AudioEncoding::kMulaw,
                                           AudioEncoding::kAlaw,
                                           AudioEncoding::kLinearU8,
                                           AudioEncoding::kLinearS16,
                                           AudioEncoding::kLinearS24));

TEST(SampleConvertTest, ClampsOutOfRangeFloats) {
  std::vector<float> in = {2.0f, -2.0f};
  Bytes wire = EncodeFromFloat(in, AudioEncoding::kLinearS16);
  std::vector<float> out = DecodeToFloat(wire, AudioEncoding::kLinearS16);
  EXPECT_NEAR(out[0], 1.0f, 0.001f);
  EXPECT_NEAR(out[1], -1.0f, 0.001f);
}

// ------------------------------------------------------------------- PCM --

TEST(PcmTest, GainIsLinear) {
  PcmBuffer buf;
  buf.samples = {0.5f, -0.25f};
  ApplyGain(&buf, 2.0f);
  EXPECT_FLOAT_EQ(buf.samples[0], 1.0f);
  EXPECT_FLOAT_EQ(buf.samples[1], -0.5f);
}

TEST(PcmTest, DbGainConversions) {
  EXPECT_NEAR(DbToGain(0.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(DbToGain(-6.0206f), 0.5f, 1e-4f);
  EXPECT_NEAR(GainToDb(2.0f), 6.0206f, 1e-3f);
}

TEST(PcmTest, MixRequiresMatchingLayout) {
  PcmBuffer a{{0.1f, 0.2f}, 1, 8000};
  PcmBuffer b{{0.3f, 0.4f}, 2, 8000};
  EXPECT_FALSE(MixInto(&a, b).ok());
}

TEST(PcmTest, MixAddsAndGrows) {
  PcmBuffer a{{0.1f, 0.2f}, 1, 8000};
  PcmBuffer b{{0.3f, 0.4f, 0.5f}, 1, 8000};
  ASSERT_TRUE(MixInto(&a, b).ok());
  ASSERT_EQ(a.samples.size(), 3u);
  EXPECT_FLOAT_EQ(a.samples[0], 0.4f);
  EXPECT_FLOAT_EQ(a.samples[2], 0.5f);
}

TEST(PcmTest, MonoToStereoDuplicates) {
  PcmBuffer in{{0.1f, 0.2f}, 1, 8000};
  PcmBuffer out = ConvertChannels(in, 2);
  ASSERT_EQ(out.samples.size(), 4u);
  EXPECT_FLOAT_EQ(out.samples[0], 0.1f);
  EXPECT_FLOAT_EQ(out.samples[1], 0.1f);
  EXPECT_FLOAT_EQ(out.samples[2], 0.2f);
  EXPECT_FLOAT_EQ(out.samples[3], 0.2f);
}

TEST(PcmTest, StereoToMonoAverages) {
  PcmBuffer in{{0.2f, 0.4f, -0.2f, -0.4f}, 2, 8000};
  PcmBuffer out = ConvertChannels(in, 1);
  ASSERT_EQ(out.samples.size(), 2u);
  EXPECT_FLOAT_EQ(out.samples[0], 0.3f);
  EXPECT_FLOAT_EQ(out.samples[1], -0.3f);
}

TEST(PcmTest, ResampleDoublesFrameCount) {
  PcmBuffer in;
  in.channels = 1;
  in.sample_rate = 8000;
  SineGenerator gen(440.0);
  gen.Generate(800, 1, 8000, &in.samples);
  PcmBuffer out = Resample(in, 16000);
  EXPECT_EQ(out.sample_rate, 16000);
  EXPECT_NEAR(static_cast<double>(out.frames()), 1600.0, 2.0);
}

TEST(PcmTest, ResamplePreservesToneFrequency) {
  // A 440 Hz tone resampled 8k->16k should still cross zero ~880 times/sec.
  PcmBuffer in;
  in.channels = 1;
  in.sample_rate = 8000;
  SineGenerator gen(440.0);
  gen.Generate(8000, 1, 8000, &in.samples);
  PcmBuffer out = Resample(in, 16000);
  int crossings = 0;
  for (size_t i = 1; i < out.samples.size(); ++i) {
    if ((out.samples[i - 1] < 0) != (out.samples[i] < 0)) {
      ++crossings;
    }
  }
  EXPECT_NEAR(crossings, 880, 4);
}

// ------------------------------------------------------------ Generators --

TEST(GeneratorTest, SineFrequencyViaZeroCrossings) {
  SineGenerator gen(1000.0, 0.5f);
  std::vector<float> samples;
  gen.Generate(44100, 1, 44100, &samples);
  int crossings = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    if ((samples[i - 1] < 0) != (samples[i] < 0)) {
      ++crossings;
    }
  }
  EXPECT_NEAR(crossings, 2000, 3);
  EXPECT_NEAR(Peak(samples), 0.5, 0.01);
}

TEST(GeneratorTest, SineIsContinuousAcrossCalls) {
  SineGenerator a(440.0);
  SineGenerator b(440.0);
  std::vector<float> whole;
  a.Generate(1000, 1, 44100, &whole);
  std::vector<float> parts;
  b.Generate(400, 1, 44100, &parts);
  b.Generate(600, 1, 44100, &parts);
  ASSERT_EQ(whole.size(), parts.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_NEAR(whole[i], parts[i], 1e-5f);
  }
}

TEST(GeneratorTest, StereoChannelsCarrySameSignal) {
  SineGenerator gen(440.0);
  std::vector<float> samples;
  gen.Generate(100, 2, 44100, &samples);
  ASSERT_EQ(samples.size(), 200u);
  for (size_t f = 0; f < 100; ++f) {
    EXPECT_EQ(samples[2 * f], samples[2 * f + 1]);
  }
}

TEST(GeneratorTest, WhiteNoiseStatistics) {
  WhiteNoiseGenerator gen(7, 0.5f);
  std::vector<float> samples;
  gen.Generate(20000, 1, 44100, &samples);
  EXPECT_NEAR(Rms(samples), 0.5 / std::sqrt(3.0), 0.02);
  EXPECT_LE(Peak(samples), 0.5);
}

TEST(GeneratorTest, SilenceIsAllZero) {
  SilenceGenerator gen;
  std::vector<float> samples;
  gen.Generate(100, 2, 8000, &samples);
  EXPECT_EQ(samples.size(), 200u);
  EXPECT_EQ(Peak(samples), 0.0);
}

TEST(GeneratorTest, SpeechLikeHasPauses) {
  SpeechLikeGenerator gen(3);
  std::vector<float> samples;
  gen.Generate(8000 * 6, 1, 8000, &samples);
  // Count 100 ms windows that are essentially silent.
  int silent_windows = 0;
  const size_t window = 800;
  for (size_t start = 0; start + window <= samples.size(); start += window) {
    std::vector<float> chunk(samples.begin() + static_cast<long>(start),
                             samples.begin() + static_cast<long>(start + window));
    if (Rms(chunk) < 0.01) {
      ++silent_windows;
    }
  }
  EXPECT_GE(silent_windows, 5);  // ~0.6 s of pause per 3 s cycle.
}

TEST(GeneratorTest, GenerateBytesMatchesConfigSize) {
  MusicLikeGenerator gen(1);
  AudioConfig cd = AudioConfig::CdQuality();
  Bytes wire = gen.GenerateBytes(441, cd);
  EXPECT_EQ(wire.size(), 441u * 4u);
}

// -------------------------------------------------------------- Analysis --

TEST(AnalysisTest, RmsOfFullScaleSine) {
  SineGenerator gen(440.0, 1.0f);
  std::vector<float> samples;
  gen.Generate(44100, 1, 44100, &samples);
  EXPECT_NEAR(Rms(samples), 1.0 / std::sqrt(2.0), 0.001);
  EXPECT_NEAR(RmsDbfs(samples), 0.0, 0.05);
}

TEST(AnalysisTest, SnrIdenticalIsInfinite) {
  std::vector<float> a = {0.1f, 0.2f, -0.3f};
  EXPECT_TRUE(std::isinf(SnrDb(a, a)));
}

TEST(AnalysisTest, SnrKnownNoiseLevel) {
  SineGenerator gen(440.0, 0.5f);
  std::vector<float> clean;
  gen.Generate(44100, 1, 44100, &clean);
  std::vector<float> noisy = clean;
  Prng prng(11);
  for (float& s : noisy) {
    s += static_cast<float>(prng.NextGaussian()) * 0.005f;
  }
  double snr = SnrDb(clean, noisy);
  // Signal RMS 0.354, noise RMS 0.005 -> ~37 dB.
  EXPECT_NEAR(snr, 37.0, 1.0);
}

TEST(AnalysisTest, AlignmentFindsKnownLag) {
  SineGenerator gen(313.0, 0.5f);  // Non-harmonic of the window.
  std::vector<float> reference;
  gen.Generate(4000, 1, 8000, &reference);
  // test = reference delayed by 25 samples.
  std::vector<float> test(reference.size(), 0.0f);
  for (size_t i = 25; i < test.size(); ++i) {
    test[i] = reference[i - 25];
  }
  AlignmentResult result = FindAlignment(reference, test, 100);
  EXPECT_EQ(result.lag, 25);
  EXPECT_GT(result.correlation, 0.95);
}

TEST(AnalysisTest, AlignmentOfUncorrelatedNoiseIsWeak) {
  WhiteNoiseGenerator g1(1);
  WhiteNoiseGenerator g2(2);
  std::vector<float> a;
  std::vector<float> b;
  g1.Generate(4000, 1, 8000, &a);
  g2.Generate(4000, 1, 8000, &b);
  AlignmentResult result = FindAlignment(a, b, 50);
  EXPECT_LT(result.correlation, 0.2);
}

// ------------------------------------------------------------------- WAV --

TEST(WavTest, MemoryRoundTrip) {
  PcmBuffer pcm;
  pcm.channels = 2;
  pcm.sample_rate = 22050;
  MusicLikeGenerator gen(5);
  gen.Generate(2205, 2, 22050, &pcm.samples);
  Bytes wav = EncodeWav(pcm);
  Result<PcmBuffer> back = DecodeWav(wav);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->channels, 2);
  EXPECT_EQ(back->sample_rate, 22050);
  ASSERT_EQ(back->samples.size(), pcm.samples.size());
  EXPECT_GT(SnrDb(pcm.samples, back->samples), 80.0);  // 16-bit quantization.
}

TEST(WavTest, FileRoundTrip) {
  PcmBuffer pcm;
  pcm.channels = 1;
  pcm.sample_rate = 8000;
  SineGenerator gen(440.0);
  gen.Generate(800, 1, 8000, &pcm.samples);
  std::string path = ::testing::TempDir() + "/espk_wav_test.wav";
  ASSERT_TRUE(WriteWavFile(path, pcm).ok());
  Result<PcmBuffer> back = ReadWavFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->frames(), pcm.frames());
  std::remove(path.c_str());
}

TEST(WavTest, RejectsGarbage) {
  Bytes garbage = {'n', 'o', 't', 'a', 'w', 'a', 'v', '!'};
  EXPECT_FALSE(DecodeWav(garbage).ok());
}

TEST(WavTest, RejectsTruncatedData) {
  PcmBuffer pcm;
  pcm.channels = 1;
  pcm.sample_rate = 8000;
  pcm.samples.assign(100, 0.1f);
  Bytes wav = EncodeWav(pcm);
  wav.resize(wav.size() / 2);
  EXPECT_FALSE(DecodeWav(wav).ok());
}

}  // namespace
}  // namespace espk
