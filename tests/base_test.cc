#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/base/logging.h"
#include "src/base/prng.h"
#include "src/base/rate.h"
#include "src/base/ring_buffer.h"
#include "src/base/stats.h"
#include "src/base/status.h"
#include "src/base/time_types.h"

namespace espk {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad rate");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rate");
}

TEST(StatusTest, AllErrorConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(PermissionDeniedError("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Status FailsIfNegative(int x) {
  if (x < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status UsesReturnIfError(int x) {
  ESPK_RETURN_IF_ERROR(FailsIfNegative(x));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_FALSE(UsesReturnIfError(-1).ok());
}

// ----------------------------------------------------------------- Bytes --

TEST(BytesTest, IntegerRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteF64(3.14159);
  Bytes buf = w.TakeBytes();

  ByteReader r(buf);
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU16(), 0x1234);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(*r.ReadF64(), 3.14159);
  EXPECT_TRUE(r.empty());
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.WriteU32(0x01020304);
  Bytes buf = w.TakeBytes();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(BytesTest, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.WriteString("ethernet speaker");
  w.WriteLengthPrefixed({1, 2, 3});
  Bytes buf = w.TakeBytes();

  ByteReader r(buf);
  EXPECT_EQ(*r.ReadString(), "ethernet speaker");
  Bytes blob = *r.ReadLengthPrefixed();
  EXPECT_EQ(blob, Bytes({1, 2, 3}));
}

TEST(BytesTest, ReadPastEndFails) {
  ByteWriter w;
  w.WriteU16(7);
  Bytes buf = w.TakeBytes();
  ByteReader r(buf);
  EXPECT_TRUE(r.ReadU32().status().code() == StatusCode::kOutOfRange);
  // Cursor is unchanged after a failed read; a U16 still works.
  EXPECT_EQ(*r.ReadU16(), 7);
}

TEST(BytesTest, TruncatedLengthPrefixFails) {
  ByteWriter w;
  w.WriteU32(100);  // Claims 100 bytes follow; none do.
  Bytes buf = w.TakeBytes();
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadLengthPrefixed().ok());
}

// ----------------------------------------------------------------- CRC32 --

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 is the standard check value.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInput) {
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(1000);
  std::iota(data.begin(), data.end(), 0);
  uint32_t state = Crc32Init();
  state = Crc32Update(state, data.data(), 300);
  state = Crc32Update(state, data.data() + 300, 700);
  EXPECT_EQ(Crc32Final(state), Crc32(data));
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  Bytes data(64, 0x5A);
  uint32_t clean = Crc32(data);
  data[17] ^= 0x01;
  EXPECT_NE(Crc32(data), clean);
}

// Independent bit-at-a-time reference for the reflected IEEE polynomial.
// The production implementation is table-driven (slicing-by-8) and must be
// bit-identical to this for any span and any split point.
uint32_t Crc32BitwiseUpdate(uint32_t state, const uint8_t* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    state ^= data[i];
    for (int bit = 0; bit < 8; ++bit) {
      state = (state >> 1) ^ ((state & 1u) ? 0xEDB88320u : 0u);
    }
  }
  return state;
}

TEST(Crc32Test, SlicedMatchesBitwiseReferenceOnRandomSpans) {
  Prng prng(91);
  Bytes data(4096);
  for (auto& b : data) {
    b = static_cast<uint8_t>(prng.NextInRange(0, 255));
  }
  for (int trial = 0; trial < 200; ++trial) {
    // Random offset and length so the 8-byte slicing loop is exercised with
    // every head/tail misalignment, including spans shorter than one chunk.
    const auto off = static_cast<size_t>(prng.NextInRange(0, 4095));
    const auto len =
        static_cast<size_t>(prng.NextInRange(0, 4096 - static_cast<int64_t>(off)));
    const uint32_t expected =
        Crc32Final(Crc32BitwiseUpdate(Crc32Init(), data.data() + off, len));
    ASSERT_EQ(Crc32(data.data() + off, len), expected)
        << "off=" << off << " len=" << len;
    // And split incrementally at an arbitrary point.
    const auto cut = static_cast<size_t>(prng.NextInRange(0, static_cast<int64_t>(len)));
    uint32_t state = Crc32Init();
    state = Crc32Update(state, data.data() + off, cut);
    state = Crc32Update(state, data.data() + off + cut, len - cut);
    ASSERT_EQ(Crc32Final(state), expected)
        << "off=" << off << " len=" << len << " cut=" << cut;
  }
}

// ------------------------------------------------------------ RingBuffer --

TEST(RingBufferTest, BasicWriteRead) {
  RingBuffer rb(16);
  Bytes in = {1, 2, 3, 4, 5};
  EXPECT_EQ(rb.Write(in), 5u);
  EXPECT_EQ(rb.size(), 5u);
  Bytes out = rb.ReadUpTo(5);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, ShortWriteWhenFull) {
  RingBuffer rb(4);
  Bytes in = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(rb.Write(in), 4u);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.Write(in), 0u);
}

TEST(RingBufferTest, WrapAround) {
  RingBuffer rb(8);
  Bytes a = {1, 2, 3, 4, 5, 6};
  rb.Write(a);
  rb.ReadUpTo(4);  // head moves to 4
  Bytes b = {7, 8, 9, 10, 11};
  EXPECT_EQ(rb.Write(b), 5u);  // wraps
  Bytes out = rb.ReadUpTo(7);
  EXPECT_EQ(out, Bytes({5, 6, 7, 8, 9, 10, 11}));
}

TEST(RingBufferTest, PeekDoesNotConsume) {
  RingBuffer rb(8);
  rb.Write(Bytes{9, 8, 7});
  uint8_t tmp[3];
  EXPECT_EQ(rb.Peek(tmp, 3), 3u);
  EXPECT_EQ(tmp[0], 9);
  EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBufferTest, DropDiscards) {
  RingBuffer rb(8);
  rb.Write(Bytes{1, 2, 3, 4});
  EXPECT_EQ(rb.Drop(2), 2u);
  EXPECT_EQ(rb.ReadUpTo(8), Bytes({3, 4}));
  EXPECT_EQ(rb.Drop(5), 0u);
}

TEST(RingBufferTest, CountersTrackLifetimeBytes) {
  RingBuffer rb(4);
  rb.Write(Bytes{1, 2, 3, 4});
  rb.ReadUpTo(2);
  rb.Write(Bytes{5, 6});
  rb.ReadUpTo(10);
  EXPECT_EQ(rb.total_written(), 6u);
  EXPECT_EQ(rb.total_read(), 6u);
}

TEST(RingBufferTest, SetCapacityPreservesNewestData) {
  RingBuffer rb(8);
  rb.Write(Bytes{1, 2, 3, 4, 5, 6});
  rb.SetCapacity(4);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_EQ(rb.ReadUpTo(4), Bytes({3, 4, 5, 6}));
}

TEST(RingBufferTest, SetCapacityGrow) {
  RingBuffer rb(4);
  rb.Write(Bytes{1, 2, 3});
  rb.SetCapacity(16);
  EXPECT_EQ(rb.ReadUpTo(16), Bytes({1, 2, 3}));
  EXPECT_EQ(rb.capacity(), 16u);
}

// ------------------------------------------------------------------ Prng --

TEST(PrngTest, DeterministicForSameSeed) {
  Prng a(42);
  Prng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1);
  Prng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(7);
  for (int i = 0; i < 1000; ++i) {
    double d = p.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrngTest, NextBelowRespectsBound) {
  Prng p(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(p.NextBelow(13), 13u);
  }
}

TEST(PrngTest, NextInRangeInclusive) {
  Prng p(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = p.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, GaussianMomentsRoughlyStandard) {
  Prng p(99);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(p.NextGaussian());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(PrngTest, NextBoolProbability) {
  Prng p(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += p.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

// ----------------------------------------------------------------- Stats --

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, PercentilesOfUniformData) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(i + 0.5);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.99), 99.0, 1.5);
}

TEST(HistogramTest, OutOfRangeCounted) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(15.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
}

TEST(HistogramTest, ExtremeQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 50; ++i) {
    h.Add(42.0);  // All samples land in bucket [40, 50).
  }
  // q=0 reports the low edge of the range; q=1 the upper edge of the
  // highest populated bucket.
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 50.0);
}

TEST(HistogramTest, ExtremeQuantilesWithOverflow) {
  Histogram h(0.0, 100.0, 10);
  h.Add(-1.0);
  h.Add(1000.0);
  // Underflow pins q=0 at lo; overflow means the top quantile can only be
  // bounded by hi.
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, EmptyPercentileIsLo) {
  Histogram h(-5.0, 5.0, 10);
  EXPECT_EQ(h.Percentile(0.0), -5.0);
  EXPECT_EQ(h.Percentile(0.5), -5.0);
  EXPECT_EQ(h.Percentile(1.0), -5.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(5.0);
  h.Add(99.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.underflow(), 0);
  EXPECT_EQ(h.overflow(), 0);
  for (int i = 0; i < h.bucket_count(); ++i) {
    EXPECT_EQ(h.bucket(i), 0);
  }
  // Range survives a reset.
  EXPECT_EQ(h.lo(), 0.0);
  EXPECT_EQ(h.hi(), 10.0);
}

// ---------------------------------------------------------------- Logging --

TEST(LoggingTest, ScopedCaptureRecordsAndRestores) {
  {
    ScopedLogCapture capture;
    ESPK_LOG(kWarning) << "first " << 42;
    ESPK_LOG(kError) << "second";
    ASSERT_EQ(capture.count(), 2u);
    EXPECT_EQ(capture.entries()[0].level, LogLevel::kWarning);
    EXPECT_EQ(capture.entries()[0].message, "first 42");
    EXPECT_TRUE(capture.Contains("second"));
    EXPECT_FALSE(capture.Contains("third"));
  }
  // Sink restored: a fresh capture starts empty and the old one is gone.
  ScopedLogCapture after;
  ESPK_LOG(kError) << "third";
  EXPECT_EQ(after.count(), 1u);
}

TEST(LoggingTest, CaptureHonorsThreshold) {
  ScopedLogCapture capture(LogLevel::kWarning);
  ESPK_LOG(kDebug) << "too quiet";
  ESPK_LOG(kInfo) << "still too quiet";
  ESPK_LOG(kWarning) << "loud enough";
  ASSERT_EQ(capture.count(), 1u);
  EXPECT_EQ(capture.entries()[0].message, "loud enough");
}

TEST(LoggingTest, CaptureLowersThresholdByDefault) {
  LogLevel before = GetLogThreshold();
  {
    ScopedLogCapture capture;  // Defaults to kDebug.
    ESPK_LOG(kDebug) << "visible";
    EXPECT_EQ(capture.count(), 1u);
  }
  EXPECT_EQ(GetLogThreshold(), before);
}

// ------------------------------------------------------------ TokenBucket --

TEST(TokenBucketTest, AllowsBurstThenThrottles) {
  TokenBucket tb(1000.0, 500.0);  // 1000 B/s, 500 B burst.
  EXPECT_TRUE(tb.TryConsume(0, 500.0));
  EXPECT_FALSE(tb.TryConsume(0, 1.0));
  // After 100 ms, 100 bytes refilled.
  EXPECT_TRUE(tb.TryConsume(Milliseconds(100), 100.0));
  EXPECT_FALSE(tb.TryConsume(Milliseconds(100), 10.0));
}

TEST(TokenBucketTest, NextAvailablePredictsRefill) {
  TokenBucket tb(1000.0, 500.0);
  ASSERT_TRUE(tb.TryConsume(0, 500.0));
  SimTime t = tb.NextAvailable(0, 250.0);
  EXPECT_NEAR(ToSecondsF(t), 0.25, 0.001);
  EXPECT_TRUE(tb.TryConsume(t, 250.0));
}

TEST(RateMeterTest, ComputesAverageBps) {
  RateMeter m;
  m.Record(0, 1000);
  m.Record(Seconds(1), 1000);
  // 2000 bytes over 1 second = 16000 bps.
  EXPECT_NEAR(m.average_bps(), 16000.0, 1.0);
  EXPECT_EQ(m.total_bytes(), 2000u);
}

// ------------------------------------------------------------ Time types --

TEST(TimeTypesTest, FrameDurationConversions) {
  // 44100 frames at 44.1 kHz is exactly one second.
  EXPECT_EQ(FramesToDuration(44100, 44100), kSecond);
  EXPECT_EQ(DurationToFrames(kSecond, 44100), 44100);
  // Rounding: 1 frame at 44.1 kHz is ~22676 ns.
  EXPECT_NEAR(static_cast<double>(FramesToDuration(1, 44100)), 22675.7, 1.0);
}

}  // namespace
}  // namespace espk
