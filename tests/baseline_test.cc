#include <gtest/gtest.h>

#include "src/audio/analysis.h"
#include "src/baseline/baseline.h"
#include "src/core/system.h"

namespace espk {
namespace {

TEST(UnicastBaselineTest, LoadGrowsLinearlyWithListeners) {
  // The C6 motivation: each extra unicast listener adds a full stream's
  // worth of traffic; multicast stays flat.
  auto run_unicast = [](int listeners) {
    Simulation sim;
    SegmentConfig config;
    EthernetSegment segment(&sim, config);
    auto server_nic = segment.CreateNic();
    UnicastStreamServer server(&sim, server_nic.get(),
                               AudioConfig::PhoneQuality(),
                               std::make_unique<SineGenerator>(440.0), 800);
    std::vector<std::unique_ptr<SimNic>> nics;
    for (int i = 0; i < listeners; ++i) {
      nics.push_back(segment.CreateNic());
      server.AddListener(nics.back()->node_id());
    }
    server.Start();
    sim.RunUntil(Seconds(10));
    return segment.stats().bytes_on_wire;
  };
  uint64_t one = run_unicast(1);
  uint64_t eight = run_unicast(8);
  EXPECT_NEAR(static_cast<double>(eight) / static_cast<double>(one), 8.0,
              0.5);
}

TEST(UnicastBaselineTest, MulticastLoadIsFlat) {
  auto run_multicast = [](int listeners) {
    EthernetSpeakerSystem system;
    Channel* channel = *system.CreateChannel("music");
    PlayerAppOptions opts;
    opts.config = AudioConfig::PhoneQuality();
    opts.chunk_frames = 800;
    EXPECT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<SineGenerator>(440.0), opts)
                    .ok());
    for (int i = 0; i < listeners; ++i) {
      SpeakerOptions so;
      so.decode_speed_factor = 0.05;
      EXPECT_TRUE(system.AddSpeaker(so, channel->group).ok());
    }
    system.sim()->RunUntil(Seconds(10));
    return system.lan()->stats().bytes_on_wire;
  };
  uint64_t one = run_multicast(1);
  uint64_t eight = run_multicast(8);
  EXPECT_NEAR(static_cast<double>(eight) / static_cast<double>(one), 1.0,
              0.05);
}

TEST(UnsyncReceiverTest, PlaysTheStream) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(1), opts)
                  .ok());
  auto nic = system.lan()->CreateNic();
  UnsyncReceiver radio(system.sim(), nic.get(), UnsyncReceiverOptions{});
  ASSERT_TRUE(radio.Tune(channel->group).ok());
  system.sim()->RunUntil(Seconds(5));
  EXPECT_TRUE(radio.ready());
  EXPECT_GT(radio.chunks_played(), 30u);
}

TEST(UnsyncReceiverTest, StaggeredStartsStayPermanentlySkewed) {
  // Two unsynchronized radios started at different times play the same
  // content offset by their buffer-fill difference — the §4.2 complaint
  // ("they do not provide synchronization between nearby stations").
  // Ethernet Speakers under identical conditions stay sample-aligned.
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(2), opts)
                  .ok());

  auto nic1 = system.lan()->CreateNic();
  UnsyncReceiver radio1(system.sim(), nic1.get(), UnsyncReceiverOptions{});
  ASSERT_TRUE(radio1.Tune(channel->group).ok());

  // ES pair for comparison, one also joining late.
  SpeakerOptions so;
  so.decode_speed_factor = 0.05;
  EthernetSpeaker* es1 = *system.AddSpeaker(so, channel->group);

  system.sim()->RunUntil(Seconds(3));

  auto nic2 = system.lan()->CreateNic();
  UnsyncReceiver radio2(system.sim(), nic2.get(), UnsyncReceiverOptions{});
  ASSERT_TRUE(radio2.Tune(channel->group).ok());
  EthernetSpeaker* es2 = *system.AddSpeaker(so, channel->group);

  system.sim()->RunUntil(Seconds(12));

  // Compare over a window where everyone is playing.
  const SimTime from = Seconds(8);
  const SimDuration window = Seconds(1);
  std::vector<float> r1 = radio1.output()->Render(from, window);
  std::vector<float> r2 = radio2.output()->Render(from, window);
  AlignmentResult radio_alignment =
      FindAlignment(r1, r2, 2 * 44100 / 4);  // Search up to 250 ms.
  double radio_skew_ms = std::abs(static_cast<double>(radio_alignment.lag)) /
                         2.0 / 44.1;

  std::vector<float> e1 = es1->output()->Render(from, window);
  std::vector<float> e2 = es2->output()->Render(from, window);
  AlignmentResult es_alignment = FindAlignment(e1, e2, 2 * 44100 / 4);
  double es_skew_ms =
      std::abs(static_cast<double>(es_alignment.lag)) / 2.0 / 44.1;

  // The radios are audibly apart (the late joiner buffered mid-stream);
  // the Ethernet Speakers are sample-aligned.
  EXPECT_EQ(es_skew_ms, 0.0);
  EXPECT_GT(radio_skew_ms, 5.0);
}

}  // namespace
}  // namespace espk
