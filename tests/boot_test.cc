#include <gtest/gtest.h>

#include "src/base/prng.h"
#include "src/boot/netboot.h"
#include "src/boot/ramdisk.h"
#include "src/boot/tar.h"
#include "src/lan/segment.h"

namespace espk {
namespace {

Bytes Str(const char* s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s),
               reinterpret_cast<const uint8_t*>(s) + strlen(s));
}

// -------------------------------------------------------------------- tar --

TEST(TarTest, RoundTrip) {
  FileMap files;
  files["etc/espk.conf"] = Str("channel_group=17\n");
  files["etc/hostname"] = Str("es-lobby\n");
  files["bin/payload"] = Bytes(2000, 0x5A);  // Multi-block body.
  Result<Bytes> archive = CreateTar(files);
  ASSERT_TRUE(archive.ok());
  Result<FileMap> back = ExtractTar(*archive);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, files);
}

TEST(TarTest, EmptyArchiveRoundTrip) {
  Result<Bytes> archive = CreateTar({});
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->size(), 1024u);  // Two terminating zero blocks.
  Result<FileMap> back = ExtractTar(*archive);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(TarTest, ArchiveIsBlockAligned) {
  FileMap files;
  files["a"] = Bytes(1, 0x01);
  Result<Bytes> archive = CreateTar(files);
  ASSERT_TRUE(archive.ok());
  EXPECT_EQ(archive->size() % 512, 0u);
}

TEST(TarTest, ChecksumDetectsCorruption) {
  FileMap files;
  files["etc/x"] = Str("data");
  Bytes archive = *CreateTar(files);
  archive[10] ^= 0xFF;  // Inside the header.
  EXPECT_FALSE(ExtractTar(archive).ok());
}

TEST(TarTest, TruncatedBodyRejected) {
  FileMap files;
  files["big"] = Bytes(5000, 0x22);
  Bytes archive = *CreateTar(files);
  archive.resize(512 + 1000);  // Header + partial body.
  EXPECT_FALSE(ExtractTar(archive).ok());
}

TEST(TarTest, MissingTerminatorRejected) {
  FileMap files;
  files["x"] = Str("y");
  Bytes archive = *CreateTar(files);
  archive.resize(archive.size() - 1024);  // Drop the two zero blocks.
  EXPECT_FALSE(ExtractTar(archive).ok());
}

TEST(TarTest, OverlongPathRejected) {
  FileMap files;
  files[std::string(150, 'x')] = Str("y");
  EXPECT_FALSE(CreateTar(files).ok());
}

TEST(TarTest, GarbageRejected) {
  Prng prng(5);
  Bytes garbage(2048);
  for (auto& b : garbage) {
    b = static_cast<uint8_t>(prng.NextU64());
  }
  EXPECT_FALSE(ExtractTar(garbage).ok());
}

// ---------------------------------------------------------------- ramdisk --

TEST(RamdiskTest, FileOperations) {
  RamdiskFs fs;
  fs.WriteTextFile("etc/hostname", "es-1\n");
  EXPECT_TRUE(fs.Exists("etc/hostname"));
  EXPECT_FALSE(fs.Exists("etc/nothing"));
  EXPECT_EQ(*fs.ReadTextFile("etc/hostname"), "es-1\n");
  EXPECT_FALSE(fs.ReadFile("etc/nothing").ok());
}

TEST(RamdiskTest, ListByPrefix) {
  RamdiskFs fs;
  fs.WriteTextFile("etc/a", "1");
  fs.WriteTextFile("etc/b", "2");
  fs.WriteTextFile("bin/c", "3");
  EXPECT_EQ(fs.List("etc/").size(), 2u);
  EXPECT_EQ(fs.List("").size(), 3u);
}

TEST(RamdiskTest, OverlayTarOverwritesSkeleton) {
  // §2.4: "the machine-specific information overwrites the common
  // configuration".
  RamdiskFs fs;
  fs.WriteTextFile("etc/espk.conf", "channel_group=16\nvolume=1.0\n");
  fs.WriteTextFile("etc/motd", "common\n");
  FileMap overlay;
  overlay["etc/espk.conf"] = Str("channel_group=17\nvolume=0.5\n");
  overlay["etc/local"] = Str("machine-specific\n");
  ASSERT_TRUE(fs.OverlayTar(*CreateTar(overlay)).ok());
  EXPECT_EQ(*fs.ReadTextFile("etc/espk.conf"),
            "channel_group=17\nvolume=0.5\n");
  EXPECT_EQ(*fs.ReadTextFile("etc/motd"), "common\n");  // Untouched.
  EXPECT_TRUE(fs.Exists("etc/local"));
}

TEST(RamdiskTest, ImageSerializationRoundTrip) {
  RamdiskImage image = BuildStandardEsImage(Str("fingerprint"));
  Result<RamdiskImage> back = RamdiskImage::Deserialize(image.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->version, image.version);
  EXPECT_EQ(back->root_fs, image.root_fs);
}

TEST(RamdiskTest, StandardImageHasTheEssentials) {
  RamdiskImage image = BuildStandardEsImage(Str("fp"));
  RamdiskFs fs(image.root_fs);
  EXPECT_TRUE(fs.Exists("etc/espk.conf"));
  EXPECT_TRUE(fs.Exists("etc/ssh/boot_server_key.pub"));
  EXPECT_TRUE(fs.Exists("etc/rc"));
}

TEST(RamdiskTest, ConfigFileParsing) {
  auto config = ParseConfigFile(
      "# comment line\n"
      "channel_group = 17\n"
      "volume=0.8   # trailing comment\n"
      "\n"
      "malformed line without equals\n"
      "name=es lobby\n");
  EXPECT_EQ(config.size(), 3u);
  EXPECT_EQ(config["channel_group"], "17");
  EXPECT_EQ(config["volume"], "0.8");
  EXPECT_EQ(config["name"], "es lobby");
}

// ---------------------------------------------------------------- netboot --

class NetbootFixture : public ::testing::Test {
 protected:
  NetbootFixture()
      : segment_(&sim_, SegmentConfig{}),
        server_nic_(segment_.CreateNic()),
        dhcp_nic_(segment_.CreateNic()),
        server_key_(Str("the boot server's host key")),
        image_(BuildStandardEsImage(
            DigestToBytes(Sha256::Hash(server_key_)))),
        boot_server_(&sim_, server_nic_.get(), image_, server_key_),
        dhcp_server_(&sim_, dhcp_nic_.get(), server_nic_->node_id()) {}

  Simulation sim_;
  EthernetSegment segment_;
  std::unique_ptr<SimNic> server_nic_;
  std::unique_ptr<SimNic> dhcp_nic_;
  Bytes server_key_;
  RamdiskImage image_;
  BootServer boot_server_;
  DhcpServer dhcp_server_;
};

TEST_F(NetbootFixture, FullBootSequence) {
  auto client_nic = segment_.CreateNic();
  dhcp_server_.AddHost(client_nic->node_id(), "es-lobby");
  FileMap overlay;
  overlay["etc/espk.conf"] = Str("channel_group=20\nvolume=0.7\n");
  overlay["etc/hostname"] = Str("es-lobby\n");
  boot_server_.SetConfigTar("es-lobby", *CreateTar(overlay));

  NetbootClient client(&sim_, client_nic.get());
  Result<NetbootClient::BootResult> outcome =
      InternalError("boot never completed");
  client.Boot([&](Result<NetbootClient::BootResult> r) {
    outcome = std::move(r);
  });
  sim_.RunUntil(Seconds(5));

  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(client.phase(), NetbootClient::Phase::kDone);
  EXPECT_EQ(outcome->lease.hostname, "es-lobby");
  // The overlay beat the skeleton (file-granularity replacement, §2.4).
  EXPECT_EQ(outcome->config.at("channel_group"), "20");
  EXPECT_EQ(outcome->config.at("volume"), "0.7");
  EXPECT_EQ(outcome->config.count("sync_epsilon_ms"), 0u);
  // Skeleton files the overlay did not touch survive.
  EXPECT_TRUE(outcome->root_fs.Exists("etc/rc"));
  EXPECT_EQ(*outcome->root_fs.ReadTextFile("etc/hostname"), "es-lobby\n");
  EXPECT_GT(boot_server_.image_chunks_served(), 0u);
  EXPECT_EQ(boot_server_.configs_served(), 1u);
}

TEST_F(NetbootFixture, UnknownHostGetsSkeletonDefaults) {
  auto client_nic = segment_.CreateNic();
  // No AddHost, no config tar: the machine boots with the skeleton.
  NetbootClient client(&sim_, client_nic.get());
  Result<NetbootClient::BootResult> outcome =
      InternalError("boot never completed");
  client.Boot([&](Result<NetbootClient::BootResult> r) {
    outcome = std::move(r);
  });
  sim_.RunUntil(Seconds(5));
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->config.at("channel_group"), "16");  // Skeleton value.
}

TEST_F(NetbootFixture, ManyClientsBootConcurrently) {
  std::vector<std::unique_ptr<SimNic>> nics;
  std::vector<std::unique_ptr<NetbootClient>> clients;
  int booted = 0;
  for (int i = 0; i < 5; ++i) {
    nics.push_back(segment_.CreateNic());
    clients.push_back(
        std::make_unique<NetbootClient>(&sim_, nics.back().get()));
    clients.back()->Boot([&](Result<NetbootClient::BootResult> r) {
      if (r.ok()) {
        ++booted;
      }
    });
  }
  sim_.RunUntil(Seconds(10));
  EXPECT_EQ(booted, 5);
  EXPECT_EQ(dhcp_server_.discovers_seen(), 5u);
}

TEST_F(NetbootFixture, ImposterBootServerRejected) {
  // A rogue server with a different key answers the config request; the
  // client must reject it because the fingerprint in the ramdisk does not
  // match (the paper's stored-ssh-key defence).
  auto rogue_nic = segment_.CreateNic();
  Bytes rogue_key = Str("rogue key");
  BootServer rogue(&sim_, rogue_nic.get(), image_, rogue_key);
  FileMap evil;
  evil["etc/espk.conf"] = Str("channel_group=666\n");
  rogue.SetConfigTar("es-victim", *CreateTar(evil));

  // Point DHCP at the rogue server.
  auto dhcp2_nic = segment_.CreateNic();
  DhcpServer evil_dhcp(&sim_, dhcp2_nic.get(), rogue_nic->node_id());
  // Two DHCP servers race; to make the test deterministic, use a fresh
  // segment-local client that only the rogue path will answer for: mark it
  // in the legit server's host table as unknown but direct the lease to the
  // rogue. Simplest: stop the legit DHCP by detaching its handler.
  dhcp_nic_->SetReceiveHandler(nullptr);
  evil_dhcp.AddHost(0, "unused");

  auto client_nic = segment_.CreateNic();
  NetbootClient client(&sim_, client_nic.get());
  Result<NetbootClient::BootResult> outcome =
      InternalError("boot never completed");
  client.Boot([&](Result<NetbootClient::BootResult> r) {
    outcome = std::move(r);
  });
  sim_.RunUntil(Seconds(15));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(NetbootFixture, BootTimesOutWithoutServers) {
  Simulation lonely_sim;
  EthernetSegment lonely(&lonely_sim, SegmentConfig{});
  auto nic = lonely.CreateNic();
  NetbootClient client(&lonely_sim, nic.get());
  Result<NetbootClient::BootResult> outcome =
      InternalError("boot never completed");
  client.Boot(
      [&](Result<NetbootClient::BootResult> r) { outcome = std::move(r); },
      Seconds(3));
  lonely_sim.RunUntil(Seconds(10));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(client.phase(), NetbootClient::Phase::kFailed);
}

}  // namespace
}  // namespace espk
