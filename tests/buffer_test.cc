// Buffer/BufferSlice ownership semantics plus the aliasing guarantees the
// zero-copy packet path depends on: one multicast transmission is one
// allocation no matter how many receivers it fans out to, receivers can
// never perturb each other through the shared bytes, and a slice keeps the
// transmission's buffer alive after every transport layer has moved on.
#include "src/base/buffer.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "bench/alloc_hook.h"
#include "src/base/bytes.h"
#include "src/codec/raw_codec.h"
#include "src/lan/segment.h"
#include "src/proto/wire.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

TEST(BufferTest, CopyCountsPayloadBytes) {
  ResetBufferCounters();
  Bytes src = {1, 2, 3, 4};
  Buffer copied = Buffer::Copy(src);
  EXPECT_EQ(copied.size(), 4u);
  EXPECT_EQ(copied.use_count(), 1);
  EXPECT_EQ(buffer_counters().buffers_created, 1u);
  EXPECT_EQ(buffer_counters().payload_copies, 1u);
  EXPECT_EQ(buffer_counters().payload_bytes_copied, 4u);
  // The copy is independent of the source vector.
  src[0] = 99;
  EXPECT_EQ(copied.data()[0], 1);
}

TEST(BufferTest, FromBytesAdoptsWithoutCopying) {
  ResetBufferCounters();
  Bytes src = {5, 6, 7};
  const uint8_t* storage = src.data();
  Buffer adopted = Buffer::FromBytes(std::move(src));
  EXPECT_EQ(adopted.data(), storage);  // Same heap storage, no copy.
  EXPECT_EQ(buffer_counters().adoptions, 1u);
  EXPECT_EQ(buffer_counters().payload_copies, 0u);
  EXPECT_EQ(buffer_counters().payload_bytes_copied, 0u);
}

TEST(BufferTest, SharingBumpsRefcountNotBytes) {
  Buffer original = Buffer::Copy(Bytes{1, 2, 3});
  ResetBufferCounters();
  Buffer second = original;
  BufferSlice view(original);
  EXPECT_EQ(original.use_count(), 3);
  EXPECT_EQ(second.data(), original.data());
  EXPECT_EQ(view.data(), original.data());
  EXPECT_EQ(buffer_counters().buffers_created, 0u);
  EXPECT_EQ(buffer_counters().payload_copies, 0u);
  EXPECT_EQ(buffer_counters().shares, 2u);
}

TEST(BufferSliceTest, SubsliceAliasesAndClamps) {
  BufferSlice whole = {10, 11, 12, 13, 14};
  BufferSlice mid = whole.Subslice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.data(), whole.data() + 1);  // Same allocation.
  EXPECT_EQ(mid, (Bytes{11, 12, 13}));
  // Out-of-range requests clamp instead of reading past the end.
  EXPECT_EQ(whole.Subslice(3, 100).size(), 2u);
  EXPECT_EQ(whole.Subslice(100, 5).size(), 0u);
  // Subslice of subslice stays within the inner bounds.
  EXPECT_EQ(mid.Subslice(2, 10), (Bytes{13}));
}

TEST(BufferSliceTest, EqualityIsContentNotIdentity) {
  BufferSlice a = {1, 2, 3};
  BufferSlice b = {1, 2, 3};
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  EXPECT_NE(a, (Bytes{1, 2}));
  EXPECT_NE(a.Subslice(0, 2), b);
}

TEST(BufferBuilderTest, FinishAdoptsAccumulatedBytes) {
  BufferBuilder builder;
  builder.WriteU32(0xA1B2C3D4);
  ResetBufferCounters();
  BufferSlice wire = builder.Finish();
  EXPECT_EQ(wire.size(), 4u);
  EXPECT_EQ(buffer_counters().adoptions, 1u);
  EXPECT_EQ(buffer_counters().payload_copies, 0u);
}

// ------------------------------------------------------------- aliasing

// One segment, one sender, `n` receivers joined to group 100; every
// received Datagram is appended to `out`.
struct FanOutRig {
  FanOutRig(Simulation* sim, size_t n, std::vector<Datagram>* out)
      : segment(sim, SegmentConfig{}), sender(segment.CreateNic()) {
    for (size_t i = 0; i < n; ++i) {
      receivers.push_back(segment.CreateNic());
      EXPECT_TRUE(receivers.back()->JoinGroup(100).ok());
      receivers.back()->SetReceiveHandler(
          [out](const Datagram& d) { out->push_back(d); });
    }
  }
  EthernetSegment segment;
  std::unique_ptr<SimNic> sender;
  std::vector<std::unique_ptr<SimNic>> receivers;
};

TEST(BufferAliasTest, FanOutSharesOneAllocationAcrossReceivers) {
  Simulation sim;
  std::vector<Datagram> received;
  FanOutRig rig(&sim, 8, &received);
  ResetBufferCounters();
  ASSERT_TRUE(rig.sender->SendMulticast(100, Bytes(512, 0x5A)).ok());
  sim.Run();
  ASSERT_EQ(received.size(), 8u);
  for (const Datagram& d : received) {
    EXPECT_EQ(d.payload.data(), received[0].payload.data());
    EXPECT_EQ(d.payload.size(), 512u);
  }
  // The whole transmission allocated exactly one buffer (the rvalue Bytes
  // was adopted); fan-out only bumped refcounts.
  EXPECT_EQ(buffer_counters().buffers_created, 1u);
  EXPECT_EQ(buffer_counters().payload_copies, 0u);
  EXPECT_GE(buffer_counters().shares, 8u);
}

TEST(BufferAliasTest, ReceiverMutatingDecodedOutputDoesNotPerturbOthers) {
  // Two receivers parse the same arrival buffer; each decodes its payload
  // slice independently. Scribbling over one receiver's decoded samples (or
  // a copied-out byte vector) must not show up anywhere else.
  Simulation sim;
  std::vector<Datagram> received;
  FanOutRig rig(&sim, 2, &received);

  AudioConfig config = AudioConfig::PhoneQuality();
  DataPacket packet;
  packet.stream_id = 1;
  packet.seq = 7;
  packet.frame_count = 80;
  packet.payload = Bytes(80, 0x42);
  ASSERT_TRUE(
      rig.sender->SendMulticast(100, SerializePacketSlice(packet)).ok());
  sim.Run();
  ASSERT_EQ(received.size(), 2u);

  Result<ParsedPacket> a = ParsePacket(received[0].payload);
  Result<ParsedPacket> b = ParsePacket(received[1].payload);
  ASSERT_TRUE(a.ok() && b.ok());
  const DataPacket& data_a = std::get<DataPacket>(a->packet);
  const DataPacket& data_b = std::get<DataPacket>(b->packet);
  // Both parsed payloads alias the single arrival allocation.
  EXPECT_EQ(data_a.payload.data(), data_b.payload.data());

  RawDecoder decoder(config);
  Result<std::vector<float>> samples_a = decoder.DecodePacket(data_a.payload);
  Result<std::vector<float>> samples_b = decoder.DecodePacket(data_b.payload);
  ASSERT_TRUE(samples_a.ok() && samples_b.ok());
  ASSERT_EQ(samples_a->size(), samples_b->size());

  // Receiver A trashes its decode output and a copied-out byte view.
  for (float& s : *samples_a) {
    s = -1.0f;
  }
  Bytes scribble = data_a.payload.ToBytes();
  for (uint8_t& byte : scribble) {
    byte = 0xFF;
  }
  // Receiver B's world is untouched: its decoded samples and the shared
  // wire bytes still match a fresh decode of the original payload.
  EXPECT_NE((*samples_b)[0], -1.0f);
  EXPECT_EQ(data_b.payload, Bytes(80, 0x42));
  Result<std::vector<float>> again = decoder.DecodePacket(data_b.payload);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*samples_b, *again);
}

TEST(BufferAliasTest, SliceOutlivesSegmentNicsAndSimulation) {
  BufferSlice kept;
  {
    Simulation sim;
    std::vector<Datagram> received;
    FanOutRig rig(&sim, 1, &received);
    ASSERT_TRUE(rig.sender->SendMulticast(100, Bytes{9, 8, 7, 6}).ok());
    sim.Run();
    ASSERT_EQ(received.size(), 1u);
    kept = received[0].payload;
    EXPECT_GE(kept.use_count(), 2);
  }  // Segment, NICs, pending events, and the sim itself are gone.
  EXPECT_EQ(kept.use_count(), 1);  // The slice is the last owner...
  EXPECT_EQ(kept, (Bytes{9, 8, 7, 6}));  // ...and the bytes are intact.
}

// --------------------------------------------------- steady-state allocs

// Serializes and multicasts one data packet, runs delivery, and has every
// receiver parse it (the receive handler stores the Datagram; parsing
// happens here to mimic the speaker's OnDatagram front half).
void SendOnePacket(FanOutRig* rig, Simulation* sim,
                   std::vector<Datagram>* received, uint32_t seq) {
  DataPacket packet;
  packet.stream_id = 1;
  packet.seq = seq;
  packet.frame_count = 80;
  packet.payload = Bytes(320, static_cast<uint8_t>(seq));
  ASSERT_TRUE(
      rig->sender->SendMulticast(100, SerializePacketSlice(packet)).ok());
  sim->Run();
  for (const Datagram& d : *received) {
    Result<ParsedPacket> parsed = ParsePacket(d.payload);
    ASSERT_TRUE(parsed.ok());
  }
  received->clear();
}

TEST(BufferAllocTest, SteadyStateFanOutAllocationsArePinned) {
  // The full send -> 8-receiver -> parse path, measured with the global
  // operator-new hook (bench/alloc_hook.cc is linked into this binary).
  // After warmup the per-packet allocation count must be exactly stable
  // (window two == window one), and the payload itself must allocate once
  // and copy zero times per packet regardless of receiver count.
  Simulation sim;
  std::vector<Datagram> received;
  received.reserve(16);
  FanOutRig rig(&sim, 8, &received);

  for (uint32_t seq = 1; seq <= 32; ++seq) {  // Warmup: containers settle.
    SendOnePacket(&rig, &sim, &received, seq);
  }

  constexpr uint32_t kWindow = 64;
  uint64_t allocs_before = bench::AllocCount();
  ResetBufferCounters();
  for (uint32_t seq = 100; seq < 100 + kWindow; ++seq) {
    SendOnePacket(&rig, &sim, &received, seq);
  }
  uint64_t window_one = bench::AllocCount() - allocs_before;
  BufferCounters window_one_buffers = buffer_counters();

  allocs_before = bench::AllocCount();
  ResetBufferCounters();
  for (uint32_t seq = 200; seq < 200 + kWindow; ++seq) {
    SendOnePacket(&rig, &sim, &received, seq);
  }
  uint64_t window_two = bench::AllocCount() - allocs_before;

  EXPECT_EQ(window_one, window_two)
      << "steady-state per-packet allocations drifted between windows";
  // Two buffers per transmission (the generated PCM payload, then the
  // serialized wire image — both adopted, never copied), zero payload
  // copies anywhere on the path, and one share per receiver handoff at
  // minimum.
  EXPECT_EQ(window_one_buffers.buffers_created, 2 * kWindow);
  EXPECT_EQ(window_one_buffers.payload_copies, 0u);
  EXPECT_GE(window_one_buffers.shares, kWindow * 8u);
}

}  // namespace
}  // namespace espk
