#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "src/audio/analysis.h"
#include "src/audio/generator.h"
#include "src/audio/sample_convert.h"
#include "src/base/prng.h"
#include "src/codec/codec.h"
#include "src/codec/vorbix.h"

// Counting replacements for the global allocation functions, backing the
// steady-state zero-allocation test below. Replacement operator new must be
// a non-inline namespace-scope function, hence file scope here; every
// allocation in the test binary (gtest included) routes through it, so the
// test reads deltas across exactly the calls it measures.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

// noinline: if the malloc/free bodies inline into callers, GCC's
// -Wmismatched-new-delete cross-pairs them with the visible new/delete
// expressions and raises false positives.
[[gnu::noinline]] void* operator new(std::size_t size) {
  if (size == 0) {
    size = 1;
  }
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return p;
}

[[gnu::noinline]] void* operator new[](std::size_t size) {
  return ::operator new(size);
}

[[gnu::noinline]] void operator delete(void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete[](void* p) noexcept { std::free(p); }
[[gnu::noinline]] void operator delete(void* p, std::size_t) noexcept {
  std::free(p);
}
[[gnu::noinline]] void operator delete[](void* p, std::size_t) noexcept {
  std::free(p);
}

namespace espk {
namespace {

std::vector<float> MakeContent(SignalGenerator* gen, const AudioConfig& config,
                               int64_t frames) {
  std::vector<float> samples;
  gen->Generate(frames, config.channels, config.sample_rate, &samples);
  return samples;
}

// ------------------------------------------------------------- Raw codec --

TEST(RawCodecTest, S16RoundTripIsLossless) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kRaw, cd, 0);
  auto dec = CreateDecoder(CodecId::kRaw, cd, 0);
  ASSERT_TRUE(enc.ok() && dec.ok());

  MusicLikeGenerator gen(1);
  std::vector<float> in = MakeContent(&gen, cd, 4410);
  // Quantize through s16 first so the reference is representable.
  std::vector<float> in_s16 =
      DecodeToFloat(EncodeFromFloat(in, cd.encoding), cd.encoding);

  Result<Bytes> wire = (*enc)->EncodePacket(in_s16);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->size(), in.size() * 2);  // 2 bytes per s16 sample.
  Result<std::vector<float>> out = (*dec)->DecodePacket(*wire);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), in_s16.size());
  for (size_t i = 0; i < in_s16.size(); ++i) {
    EXPECT_FLOAT_EQ((*out)[i], in_s16[i]);
  }
}

TEST(RawCodecTest, MulawRoundTripWithinCompandingError) {
  AudioConfig phone = AudioConfig::PhoneQuality();
  auto enc = CreateEncoder(CodecId::kRaw, phone, 0);
  auto dec = CreateDecoder(CodecId::kRaw, phone, 0);
  SpeechLikeGenerator gen(2);
  std::vector<float> in = MakeContent(&gen, phone, 8000);
  Result<Bytes> wire = (*enc)->EncodePacket(in);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->size(), in.size());  // 1 byte per sample.
  Result<std::vector<float>> out = (*dec)->DecodePacket(*wire);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(SnrDb(in, *out), 30.0);  // mu-law gives ~35-38 dB on speech.
}

TEST(RawCodecTest, RejectsPartialFrames) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto dec = CreateDecoder(CodecId::kRaw, cd, 0);
  Bytes odd(7, 0);  // Not a multiple of 4-byte frames.
  EXPECT_FALSE((*dec)->DecodePacket(odd).ok());
}

TEST(RawCodecTest, RejectsMisalignedSampleCount) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kRaw, cd, 0);
  std::vector<float> odd(7, 0.0f);  // Stereo needs even sample counts.
  EXPECT_FALSE((*enc)->EncodePacket(odd).ok());
}

// ---------------------------------------------------------------- Vorbix --

struct QualityCase {
  int quality;
  double min_snr_db;
  double min_compression;  // vs raw s16 size
};

class VorbixQuality : public ::testing::TestWithParam<QualityCase> {};

TEST_P(VorbixQuality, MusicSnrAndCompression) {
  const QualityCase& tc = GetParam();
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, tc.quality);
  auto dec = CreateDecoder(CodecId::kVorbix, cd, tc.quality);
  ASSERT_TRUE(enc.ok() && dec.ok());

  MusicLikeGenerator gen(7);
  std::vector<float> in = MakeContent(&gen, cd, 44100 / 2);  // 0.5 s.
  Result<Bytes> wire = (*enc)->EncodePacket(in);
  ASSERT_TRUE(wire.ok());
  Result<std::vector<float>> out = (*dec)->DecodePacket(*wire);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), in.size());

  double snr = SnrDb(in, *out);
  double raw_size = static_cast<double>(in.size()) * 2.0;
  double ratio = raw_size / static_cast<double>(wire->size());
  EXPECT_GE(snr, tc.min_snr_db) << "quality " << tc.quality;
  EXPECT_GE(ratio, tc.min_compression) << "quality " << tc.quality;
}

INSTANTIATE_TEST_SUITE_P(
    QualitySweep, VorbixQuality,
    ::testing::Values(QualityCase{0, 8.0, 6.0}, QualityCase{4, 14.0, 4.0},
                      QualityCase{8, 22.0, 2.5}, QualityCase{10, 28.0, 1.8}));

TEST(VorbixTest, HigherQualityNeverSmaller) {
  AudioConfig cd = AudioConfig::CdQuality();
  MusicLikeGenerator gen(9);
  std::vector<float> in = MakeContent(&gen, cd, 8192);
  size_t prev_size = 0;
  double prev_snr = -1e9;
  for (int q : {0, 5, 10}) {
    auto enc = CreateEncoder(CodecId::kVorbix, cd, q);
    auto dec = CreateDecoder(CodecId::kVorbix, cd, q);
    Bytes wire = *(*enc)->EncodePacket(in);
    auto out = *(*dec)->DecodePacket(wire);
    double snr = SnrDb(in, out);
    EXPECT_GE(wire.size(), prev_size);
    EXPECT_GE(snr, prev_snr);
    prev_size = wire.size();
    prev_snr = snr;
  }
}

TEST(VorbixTest, PacketsAreSelfContained) {
  // Decoding packets out of order must give the same PCM as in order —
  // this is what lets a speaker tune in mid-stream (§2.3).
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, 8);
  auto dec = CreateDecoder(CodecId::kVorbix, cd, 8);
  MusicLikeGenerator gen(11);
  std::vector<float> a = MakeContent(&gen, cd, 4096);
  std::vector<float> b = MakeContent(&gen, cd, 4096);
  Bytes wa = *(*enc)->EncodePacket(a);
  Bytes wb = *(*enc)->EncodePacket(b);

  // Decode b first, then a; then a again.
  auto out_b = *(*dec)->DecodePacket(wb);
  auto out_a1 = *(*dec)->DecodePacket(wa);
  auto out_a2 = *(*dec)->DecodePacket(wa);
  EXPECT_EQ(out_a1, out_a2);
  EXPECT_GT(SnrDb(a, out_a1), 20.0);
  EXPECT_GT(SnrDb(b, out_b), 20.0);
}

TEST(VorbixTest, ArbitraryFrameCountsRoundTrip) {
  AudioConfig cfg{22050, 1, AudioEncoding::kLinearS16};
  auto enc = CreateEncoder(CodecId::kVorbix, cfg, 9);
  auto dec = CreateDecoder(CodecId::kVorbix, cfg, 9);
  SineGenerator gen(880.0);
  for (int64_t frames : {1, 7, 511, 512, 513, 1000, 5000}) {
    std::vector<float> in = MakeContent(&gen, cfg, frames);
    Result<Bytes> wire = (*enc)->EncodePacket(in);
    ASSERT_TRUE(wire.ok()) << frames;
    Result<std::vector<float>> out = (*dec)->DecodePacket(*wire);
    ASSERT_TRUE(out.ok()) << frames;
    EXPECT_EQ(out->size(), in.size()) << frames;
  }
}

TEST(VorbixTest, SilenceCompressesExtremely) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, 10);
  std::vector<float> silence(44100 * 2, 0.0f);  // 1 s stereo.
  Bytes wire = *(*enc)->EncodePacket(silence);
  double ratio = static_cast<double>(silence.size() * 2) /
                 static_cast<double>(wire.size());
  EXPECT_GT(ratio, 20.0);
}

TEST(VorbixTest, StereoChannelsStayIndependent) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, 10);
  auto dec = CreateDecoder(CodecId::kVorbix, cd, 10);
  // Left = 440 Hz tone, right = silence.
  SineGenerator gen(440.0, 0.5f);
  std::vector<float> mono;
  gen.Generate(8192, 1, 44100, &mono);
  std::vector<float> in(mono.size() * 2);
  for (size_t f = 0; f < mono.size(); ++f) {
    in[2 * f] = mono[f];
    in[2 * f + 1] = 0.0f;
  }
  auto out = *(*dec)->DecodePacket(*(*enc)->EncodePacket(in));
  std::vector<float> left(mono.size());
  std::vector<float> right(mono.size());
  for (size_t f = 0; f < mono.size(); ++f) {
    left[f] = out[2 * f];
    right[f] = out[2 * f + 1];
  }
  EXPECT_GT(SnrDb(mono, left), 25.0);
  EXPECT_LT(Rms(right), 0.002);  // Right stays (near) silent.
}

TEST(VorbixTest, RejectsGarbageWithoutCrashing) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto dec = CreateDecoder(CodecId::kVorbix, cd, 10);
  Prng prng(43);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes garbage(prng.NextBelow(500) + 1);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(prng.NextU64());
    }
    // Must return an error or (rarely) decode noise — never crash.
    (void)(*dec)->DecodePacket(garbage);
  }
  SUCCEED();
}

TEST(VorbixTest, RejectsBitFlippedPacketsGracefully) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, 8);
  auto dec = CreateDecoder(CodecId::kVorbix, cd, 8);
  MusicLikeGenerator gen(13);
  std::vector<float> in = MakeContent(&gen, cd, 4096);
  Bytes wire = *(*enc)->EncodePacket(in);
  Prng prng(47);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes corrupt = wire;
    size_t pos = prng.NextBelow(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1u << prng.NextBelow(8));
    // Either a parse error or decoded (wrong) audio; never a crash/UB.
    Result<std::vector<float>> out = (*dec)->DecodePacket(corrupt);
    if (out.ok()) {
      EXPECT_EQ(out->size(), in.size());
    }
  }
}

TEST(VorbixTest, ChannelMismatchIsAnError) {
  AudioConfig stereo = AudioConfig::CdQuality();
  AudioConfig mono = stereo;
  mono.channels = 1;
  auto enc = CreateEncoder(CodecId::kVorbix, stereo, 8);
  auto dec = CreateDecoder(CodecId::kVorbix, mono, 8);
  MusicLikeGenerator gen(15);
  std::vector<float> in = MakeContent(&gen, stereo, 2048);
  Bytes wire = *(*enc)->EncodePacket(in);
  EXPECT_FALSE((*dec)->DecodePacket(wire).ok());
}

TEST(VorbixTest, EmptyInputIsAnError) {
  AudioConfig cd = AudioConfig::CdQuality();
  auto enc = CreateEncoder(CodecId::kVorbix, cd, 8);
  EXPECT_FALSE((*enc)->EncodePacket({}).ok());
  auto dec = CreateDecoder(CodecId::kVorbix, cd, 8);
  EXPECT_FALSE((*dec)->DecodePacket(Bytes{}).ok());
}

TEST(VorbixTest, SteadyStateIsOneAllocationPerPacket) {
  // After the per-stream scratch arenas warm up, the only heap traffic per
  // packet is the output buffer itself: one allocation for EncodePacket's
  // Bytes, one for DecodePacket's interleaved floats (DESIGN.md, "DSP plans
  // and scratch ownership"). This pins that property with the counting
  // operator new above; any reintroduced per-packet copy or temporary
  // vector fails it.
  AudioConfig cd = AudioConfig::CdQuality();
  VorbixEncoder encoder(cd, 10);
  VorbixDecoder decoder(cd, 10);
  MusicLikeGenerator gen(7);
  std::vector<float> samples = MakeContent(&gen, cd, 4096);

  for (int i = 0; i < 3; ++i) {  // Warm the arenas to steady state.
    Result<Bytes> enc = encoder.EncodePacket(samples);
    ASSERT_TRUE(enc.ok());
    ASSERT_TRUE(decoder.DecodePacket(*enc).ok());
  }

  uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  Result<Bytes> enc = encoder.EncodePacket(samples);
  const uint64_t encode_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(encode_allocs, 1u);

  before = g_heap_allocs.load(std::memory_order_relaxed);
  Result<std::vector<float>> dec = decoder.DecodePacket(*enc);
  const uint64_t decode_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(decode_allocs, 1u);
}

TEST(VorbixTest, LowSampleRateMonoWorks) {
  // The codec must work on low-bitrate channels too, even though the
  // rebroadcaster normally leaves those raw (§2.2).
  AudioConfig phone{8000, 1, AudioEncoding::kLinearS16};
  auto enc = CreateEncoder(CodecId::kVorbix, phone, 10);
  auto dec = CreateDecoder(CodecId::kVorbix, phone, 10);
  SpeechLikeGenerator gen(17);
  std::vector<float> in = MakeContent(&gen, phone, 8000);
  auto out = *(*dec)->DecodePacket(*(*enc)->EncodePacket(in));
  EXPECT_EQ(out.size(), in.size());
  EXPECT_GT(SnrDb(in, out), 12.0);
}

TEST(VorbixTest, MidSideShrinksCorrelatedStereo) {
  // Joint stereo: identical L/R content makes the side channel silent, so
  // M/S should cost barely more than mono while plain L/R pays double.
  AudioConfig cd = AudioConfig::CdQuality();
  MusicLikeGenerator gen(19);
  std::vector<float> in = MakeContent(&gen, cd, 16384);  // L == R.

  VorbixEncoder ms(cd, 10);
  ms.set_mid_side(true);
  VorbixEncoder lr(cd, 10);
  lr.set_mid_side(false);
  Bytes ms_wire = *ms.EncodePacket(in);
  Bytes lr_wire = *lr.EncodePacket(in);
  EXPECT_LT(ms_wire.size(), lr_wire.size() * 6 / 10);  // >=40% smaller.

  // Both decode back faithfully.
  VorbixDecoder dec(cd, 10);
  EXPECT_GT(SnrDb(in, *dec.DecodePacket(ms_wire)), 25.0);
  EXPECT_GT(SnrDb(in, *dec.DecodePacket(lr_wire)), 25.0);
}

TEST(VorbixTest, MidSidePreservesUncorrelatedStereo) {
  // Fully uncorrelated channels are the worst case for M/S; it must still
  // round-trip correctly (and not cost much).
  AudioConfig cd = AudioConfig::CdQuality();
  WhiteNoiseGenerator left_gen(1, 0.3f);
  WhiteNoiseGenerator right_gen(2, 0.3f);
  std::vector<float> left;
  std::vector<float> right;
  left_gen.Generate(8192, 1, 44100, &left);
  right_gen.Generate(8192, 1, 44100, &right);
  std::vector<float> in(left.size() * 2);
  for (size_t f = 0; f < left.size(); ++f) {
    in[2 * f] = left[f];
    in[2 * f + 1] = right[f];
  }
  VorbixEncoder enc(cd, 10);
  VorbixDecoder dec(cd, 10);
  std::vector<float> out = *dec.DecodePacket(*enc.EncodePacket(in));
  ASSERT_EQ(out.size(), in.size());
  // Noise through a lossy codec at q10: modest but positive SNR, and the
  // channels stay distinct.
  std::vector<float> out_left(left.size());
  std::vector<float> out_right(left.size());
  for (size_t f = 0; f < left.size(); ++f) {
    out_left[f] = out[2 * f];
    out_right[f] = out[2 * f + 1];
  }
  EXPECT_GT(SnrDb(left, out_left), 5.0);
  EXPECT_GT(SnrDb(right, out_right), 5.0);
  EXPECT_LT(FindAlignment(out_left, out_right, 0).correlation, 0.3);
}

TEST(VorbixTest, MidSideFlagOnMonoRejected) {
  // Craft a mono packet with the M/S flag set: decoder must refuse.
  AudioConfig mono{44100, 1, AudioEncoding::kLinearS16};
  VorbixEncoder enc(mono, 10);
  SineGenerator gen(440.0);
  std::vector<float> in = MakeContent(&gen, mono, 2048);
  Bytes wire = *enc.EncodePacket(in);
  wire[4] |= kVorbixFlagMidSide;  // Flags byte (magic u16, version, quality, flags).
  VorbixDecoder dec(mono, 10);
  EXPECT_FALSE(dec.DecodePacket(wire).ok());
}

TEST(CodecFactoryTest, QuantStepIndexRoundTrip) {
  for (double step : {1e-6, 0.001, 0.1, 1.0, 64.0, 1e4}) {
    uint8_t idx = QuantStepToIndex(step);
    double back = IndexToQuantStep(idx);
    // Quarter-octave resolution: within ~9%.
    EXPECT_NEAR(std::log2(back), std::log2(step), 0.13) << step;
  }
}

TEST(CodecFactoryTest, RejectsInvalidConfig) {
  AudioConfig bad = AudioConfig::CdQuality();
  bad.channels = 0;
  EXPECT_FALSE(CreateEncoder(CodecId::kVorbix, bad, 5).ok());
  EXPECT_FALSE(CreateDecoder(CodecId::kRaw, bad, 5).ok());
}

TEST(CodecFactoryTest, NamesAreStable) {
  EXPECT_EQ(CodecIdName(CodecId::kRaw), "raw");
  EXPECT_EQ(CodecIdName(CodecId::kVorbix), "vorbix");
}

}  // namespace
}  // namespace espk
