// Tests for the system facade extras: the MSNIP-style presence monitor
// (§4.3), clock-offset smoothing (extension), and facade edge cases.
#include <gtest/gtest.h>

#include "src/core/presence.h"
#include "src/core/system.h"

namespace espk {
namespace {

TEST(PresenceTest, ChannelSuspendsWithoutListenersAndResumesOnJoin) {
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            opts);
  PresenceMonitorOptions pm;
  pm.poll_interval = Seconds(1);
  pm.absent_polls_before_suspend = 3;
  PresenceMonitor monitor(&system, pm);
  monitor.Start();

  // No listeners: after 3 polls the channel suspends.
  system.sim()->RunUntil(Seconds(5));
  EXPECT_TRUE(channel->rebroadcaster->suspended());
  EXPECT_EQ(monitor.suspensions(), 1u);
  uint64_t packets_when_suspended =
      channel->rebroadcaster->stats().data_packets;
  uint64_t control_when_suspended =
      channel->rebroadcaster->stats().control_packets;

  // Ten more seconds of silence on the wire — but control packets keep
  // going so the channel remains joinable.
  system.sim()->RunUntil(Seconds(15));
  EXPECT_EQ(channel->rebroadcaster->stats().data_packets,
            packets_when_suspended);
  EXPECT_GT(channel->rebroadcaster->stats().control_packets,
            control_when_suspended + 5);
  EXPECT_GT(channel->rebroadcaster->stats().packets_suppressed, 0u);

  // A speaker tunes in: the channel resumes within a poll and the speaker
  // hears audio.
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);
  system.sim()->RunUntil(Seconds(25));
  EXPECT_FALSE(channel->rebroadcaster->suspended());
  EXPECT_EQ(monitor.resumptions(), 1u);
  EXPECT_GT(speaker->stats().chunks_played, 12u);  // ~2 chunks/s at 8 kHz.
}

TEST(PresenceTest, ListenerPresentFromTheStartNeverSuspends) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            opts);
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  (void)*system.AddSpeaker(so, channel->group);
  PresenceMonitor monitor(&system);
  monitor.Start();
  system.sim()->RunUntil(Seconds(10));
  EXPECT_EQ(monitor.suspensions(), 0u);
  EXPECT_FALSE(channel->rebroadcaster->suspended());
}

TEST(PresenceTest, UntuneEventuallySuspends) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            opts);
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);
  PresenceMonitor monitor(&system);
  monitor.Start();
  system.sim()->RunUntil(Seconds(5));
  EXPECT_FALSE(channel->rebroadcaster->suspended());
  ASSERT_TRUE(speaker->Untune().ok());
  system.sim()->RunUntil(Seconds(12));
  EXPECT_TRUE(channel->rebroadcaster->suspended());
}

TEST(ClockSmoothingTest, ReducesJitterInducedSkew) {
  // Under delivery jitter, the paper's latest-wins clock lets each control
  // packet shift a speaker's timeline by the jitter amount; smoothing
  // averages it out. Compare worst-case pairwise skew measured over many
  // control epochs.
  auto run = [](double alpha) {
    SystemOptions sys;
    sys.lan.jitter = Milliseconds(8);
    EthernetSpeakerSystem system(sys);
    RebroadcasterOptions rb;
    rb.codec_override = CodecId::kRaw;
    rb.control_interval = Milliseconds(500);
    Channel* channel = *system.CreateChannel("music", rb);
    SpeakerOptions so;
    so.decode_speed_factor = 0.05;
    so.clock_smoothing_alpha = alpha;
    (void)*system.AddSpeaker(so, channel->group);
    (void)*system.AddSpeaker(so, channel->group);
    PlayerAppOptions opts;
    opts.config = AudioConfig::PhoneQuality();
    opts.chunk_frames = 800;
    EXPECT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<WhiteNoiseGenerator>(311), opts)
                    .ok());
    // Sample skew across several control epochs and keep the worst.
    double worst = 0.0;
    for (int probe = 0; probe < 8; ++probe) {
      system.sim()->RunFor(Seconds(2));
      auto report = system.MeasureSync(system.sim()->now() - Seconds(1),
                                       Milliseconds(600), Milliseconds(30));
      worst = std::max(worst, report.max_skew_seconds);
    }
    return worst;
  };
  double paper_behavior = run(1.0);
  double smoothed = run(0.1);
  EXPECT_LE(smoothed, paper_behavior);
  EXPECT_LT(smoothed, 0.006);  // Well under the 8 ms jitter.
}

TEST(SystemTest, NicOfKnownAndUnknownSpeakers) {
  EthernetSpeakerSystem system;
  SpeakerOptions so;
  EthernetSpeaker* speaker = *system.AddSpeaker(so);
  EXPECT_NE(system.NicOf(speaker), nullptr);
  EthernetSpeaker other(system.sim(), system.NicOf(speaker), so);
  EXPECT_EQ(system.NicOf(&other), nullptr);
}

TEST(SystemTest, MeasureSyncWithNoSpeakersIsEmpty) {
  EthernetSpeakerSystem system;
  auto report = system.MeasureSync(0, Seconds(1));
  EXPECT_EQ(report.speaker_pairs, 0);
  EXPECT_EQ(report.max_skew_seconds, 0.0);
}

TEST(SystemTest, ChannelsGetDistinctGroupsAndDevices) {
  EthernetSpeakerSystem system;
  Channel* a = *system.CreateChannel("a");
  Channel* b = *system.CreateChannel("b");
  EXPECT_NE(a->group, b->group);
  EXPECT_NE(a->slave_path, b->slave_path);
  EXPECT_NE(a->stream_id, b->stream_id);
}

}  // namespace
}  // namespace espk
