#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>

#include "src/audio/generator.h"
#include "src/base/prng.h"
#include "src/dsp/bitstream.h"
#include "src/dsp/fft.h"
#include "src/dsp/mdct.h"
#include "src/dsp/psymodel.h"
#include "src/dsp/rice.h"

namespace espk {
namespace {

// ------------------------------------------------------------------- FFT --

std::vector<std::complex<double>> NaiveDft(
    const std::vector<std::complex<double>>& x) {
  const size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0.0;
    for (size_t j = 0; j < n; ++j) {
      double angle = -2.0 * std::numbers::pi * static_cast<double>(j * k) /
                     static_cast<double>(n);
      acc += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(FftTest, MatchesNaiveDftOnRandomInput) {
  Prng prng(13);
  std::vector<std::complex<double>> x(64);
  for (auto& c : x) {
    c = {prng.NextDouble() - 0.5, prng.NextDouble() - 0.5};
  }
  auto expected = NaiveDft(x);
  auto actual = x;
  Fft(&actual);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(actual[i].real(), expected[i].real(), 1e-9);
    EXPECT_NEAR(actual[i].imag(), expected[i].imag(), 1e-9);
  }
}

TEST(FftTest, InverseRecoversInput) {
  Prng prng(29);
  std::vector<std::complex<double>> x(256);
  for (auto& c : x) {
    c = {prng.NextGaussian(), prng.NextGaussian()};
  }
  auto work = x;
  Fft(&work);
  Ifft(&work);
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(work[i].real(), x[i].real(), 1e-9);
    EXPECT_NEAR(work[i].imag(), x[i].imag(), 1e-9);
  }
}

TEST(FftTest, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> x(32, 0.0);
  x[0] = 1.0;
  Fft(&x);
  for (const auto& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ParsevalHolds) {
  Prng prng(31);
  std::vector<std::complex<double>> x(128);
  double time_energy = 0.0;
  for (auto& c : x) {
    c = {prng.NextGaussian(), 0.0};
    time_energy += std::norm(c);
  }
  Fft(&x);
  double freq_energy = 0.0;
  for (const auto& c : x) {
    freq_energy += std::norm(c);
  }
  EXPECT_NEAR(freq_energy / 128.0, time_energy, 1e-8);
}

TEST(FftTest, IsPowerOfTwoHelper) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
}

TEST(FftTest, PlanMatchesFreeFunctionAndRoundTrips) {
  for (size_t n : {8u, 64u, 1024u}) {
    FftPlan plan(n);
    Prng prng(n);
    std::vector<std::complex<double>> x(n);
    for (auto& c : x) {
      c = {prng.NextGaussian(), prng.NextGaussian()};
    }
    // The free function is a one-shot plan, so results are bit-identical.
    auto via_free = x;
    Fft(&via_free);
    auto via_plan = x;
    plan.Forward(via_plan.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(via_plan[i], via_free[i]) << "n=" << n << " bin " << i;
    }
    // Reusing the same plan for the inverse recovers the input.
    plan.Inverse(via_plan.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(via_plan[i].real(), x[i].real(), 1e-9);
      EXPECT_NEAR(via_plan[i].imag(), x[i].imag(), 1e-9);
    }
  }
}

// ------------------------------------------------------------------ MDCT --

TEST(MdctTest, SineWindowSatisfiesPrincenBradley) {
  auto w = SineWindow(256);
  for (size_t n = 0; n < 128; ++n) {
    EXPECT_NEAR(w[n] * w[n] + w[n + 128] * w[n + 128], 1.0, 1e-12);
  }
}

TEST(MdctTest, FastForwardMatchesDirect) {
  const size_t m = 64;
  Mdct mdct(m);
  Prng prng(17);
  std::vector<double> x(2 * m);
  for (auto& v : x) {
    v = prng.NextGaussian();
  }
  auto fast = mdct.Forward(x);
  auto direct = MdctForwardDirect(x, SineWindow(2 * m));
  ASSERT_EQ(fast.size(), m);
  for (size_t k = 0; k < m; ++k) {
    EXPECT_NEAR(fast[k], direct[k], 1e-9) << "bin " << k;
  }
}

TEST(MdctTest, FastInverseMatchesDirect) {
  const size_t m = 64;
  Mdct mdct(m);
  Prng prng(19);
  std::vector<double> coeffs(m);
  for (auto& v : coeffs) {
    v = prng.NextGaussian();
  }
  auto fast = mdct.Inverse(coeffs);
  auto direct = MdctInverseDirect(coeffs, SineWindow(2 * m));
  ASSERT_EQ(fast.size(), 2 * m);
  for (size_t n = 0; n < 2 * m; ++n) {
    EXPECT_NEAR(fast[n], direct[n], 1e-9) << "sample " << n;
  }
}

// Property sweep: TDAC perfect reconstruction at several block sizes.
class MdctTdac : public ::testing::TestWithParam<size_t> {};

TEST_P(MdctTdac, OverlapAddReconstructsExactly) {
  const size_t m = GetParam();
  Mdct mdct(m);
  Prng prng(23);
  const size_t blocks = 6;
  std::vector<double> signal(m * (blocks + 1));
  for (auto& v : signal) {
    v = prng.NextGaussian();
  }
  std::vector<double> recon(signal.size(), 0.0);
  for (size_t b = 0; b < blocks; ++b) {
    std::vector<double> slice(signal.begin() + static_cast<long>(b * m),
                              signal.begin() + static_cast<long>(b * m + 2 * m));
    auto coeffs = mdct.Forward(slice);
    auto out = mdct.Inverse(coeffs);
    for (size_t n = 0; n < 2 * m; ++n) {
      recon[b * m + n] += out[n];
    }
  }
  // The interior region [m, blocks*m) is fully overlapped and must match.
  for (size_t n = m; n < blocks * m; ++n) {
    EXPECT_NEAR(recon[n], signal[n], 1e-9) << "sample " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, MdctTdac,
                         ::testing::Values(16, 64, 256, 512));

// Oracle sweep: the plan-based fast path (fold + split-radix-style DCT-IV
// over two half-length FFTs) must agree with the direct O(N^2) formulas at
// every power-of-two size the codec could be configured with.
class MdctPlanOracle : public ::testing::TestWithParam<size_t> {};

TEST_P(MdctPlanOracle, ForwardAndInverseMatchDirectFormulas) {
  const size_t m = GetParam();
  Mdct mdct(m);
  Prng prng(m);
  const auto window = SineWindow(2 * m);

  std::vector<double> x(2 * m);
  for (auto& v : x) {
    v = prng.NextGaussian();
  }
  auto fast_fwd = mdct.Forward(x);
  auto direct_fwd = MdctForwardDirect(x, window);
  ASSERT_EQ(fast_fwd.size(), m);
  for (size_t k = 0; k < m; ++k) {
    ASSERT_NEAR(fast_fwd[k], direct_fwd[k], 1e-9) << "m=" << m << " bin " << k;
  }

  std::vector<double> coeffs(m);
  for (auto& v : coeffs) {
    v = prng.NextGaussian();
  }
  auto fast_inv = mdct.Inverse(coeffs);
  auto direct_inv = MdctInverseDirect(coeffs, window);
  ASSERT_EQ(fast_inv.size(), 2 * m);
  for (size_t n = 0; n < 2 * m; ++n) {
    ASSERT_NEAR(fast_inv[n], direct_inv[n], 1e-9)
        << "m=" << m << " sample " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, MdctPlanOracle,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 512, 1024,
                                           2048, 4096));

// -------------------------------------------------------------- Bitstream --

TEST(BitstreamTest, BitsRoundTrip) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0xFFFF, 16);
  w.WriteBits(0, 1);
  w.WriteBits(0x123456789ABCDEFull, 60);
  Bytes buf = w.Finish();

  BitReader r(buf);
  EXPECT_EQ(*r.ReadBits(3), 0b101u);
  EXPECT_EQ(*r.ReadBits(16), 0xFFFFu);
  EXPECT_EQ(*r.ReadBits(1), 0u);
  EXPECT_EQ(*r.ReadBits(60), 0x123456789ABCDEFull);
}

TEST(BitstreamTest, UnaryRoundTrip) {
  BitWriter w;
  for (uint32_t v : {0u, 1u, 5u, 31u}) {
    w.WriteUnary(v);
  }
  Bytes buf = w.Finish();
  BitReader r(buf);
  for (uint32_t v : {0u, 1u, 5u, 31u}) {
    EXPECT_EQ(*r.ReadUnary(), v);
  }
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(0xA, 4);
  Bytes buf = w.Finish();  // One byte after padding.
  BitReader r(buf);
  EXPECT_TRUE(r.ReadBits(8).ok());
  EXPECT_FALSE(r.ReadBits(8).ok());
}

TEST(BitstreamTest, UnaryRunLimitStopsCorruptInput) {
  Bytes all_ones(1024, 0xFF);
  BitReader r(all_ones);
  EXPECT_FALSE(r.ReadUnary(100).ok());
}

TEST(BitstreamTest, ZeroBitWriteIsNoOp) {
  BitWriter w;
  w.WriteBits(0xFF, 0);
  w.WriteBits(1, 1);
  Bytes buf = w.Finish();
  BitReader r(buf);
  EXPECT_EQ(*r.ReadBits(1), 1u);
}

// ------------------------------------------------------------------ Rice --

TEST(RiceTest, ZigzagBijection) {
  for (int64_t v : {0ll, 1ll, -1ll, 2ll, -2ll, 1000000ll, -1000000ll}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

class RiceRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RiceRoundTrip, ValuesSurvive) {
  const int k = GetParam();
  BitWriter w;
  std::vector<int64_t> values = {0, 1, -1, 100, -100, 12345, -54321};
  for (int64_t v : values) {
    RiceEncode(&w, v, k);
  }
  Bytes buf = w.Finish();
  BitReader r(buf);
  for (int64_t v : values) {
    Result<int64_t> got = RiceDecode(&r, k);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RiceRoundTrip, ::testing::Values(0, 1, 4, 8, 15));

TEST(RiceTest, BlockRoundTripRandom) {
  Prng prng(37);
  std::vector<int32_t> values(500);
  for (auto& v : values) {
    v = static_cast<int32_t>(prng.NextInRange(-2000, 2000));
  }
  BitWriter w;
  RiceEncodeBlock(&w, values);
  Bytes buf = w.Finish();
  BitReader r(buf);
  Result<std::vector<int32_t>> got = RiceDecodeBlock(&r, values.size());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, values);
}

TEST(RiceTest, AllZerosCompressTo1BitEach) {
  std::vector<int32_t> zeros(1000, 0);
  BitWriter w;
  RiceEncodeBlock(&w, zeros);
  Bytes buf = w.Finish();
  // k=0 header (5 bits) + 1000 unary zeros = ~126 bytes.
  EXPECT_LE(buf.size(), 130u);
}

TEST(RiceTest, ParameterEstimatorTracksMagnitude) {
  std::vector<int32_t> small(100, 1);
  std::vector<int32_t> large(100, 10000);
  EXPECT_LT(EstimateRiceParameter(small), EstimateRiceParameter(large));
}

TEST(RiceTest, TruncatedBlockFails) {
  std::vector<int32_t> values(100, 777);
  BitWriter w;
  RiceEncodeBlock(&w, values);
  Bytes buf = w.Finish();
  buf.resize(buf.size() / 2);
  BitReader r(buf);
  EXPECT_FALSE(RiceDecodeBlock(&r, values.size()).ok());
}

// -------------------------------------------------------------- Psymodel --

TEST(PsymodelTest, BarkScaleIsMonotone) {
  double prev = HzToBark(20.0);
  for (double hz = 40.0; hz < 22050.0; hz *= 1.3) {
    double bark = HzToBark(hz);
    EXPECT_GT(bark, prev);
    prev = bark;
  }
  EXPECT_NEAR(HzToBark(1000.0), 8.5, 0.6);  // ~8.5 Bark at 1 kHz.
}

TEST(PsymodelTest, BandLayoutCoversAllBins) {
  BandLayout layout = MakeBandLayout(44100, 512);
  EXPECT_EQ(layout.band_begin.front(), 0u);
  EXPECT_EQ(layout.band_begin.back(), 512u);
  for (size_t b = 0; b + 1 < layout.band_begin.size(); ++b) {
    EXPECT_LT(layout.band_begin[b], layout.band_begin[b + 1]);
  }
  // Roughly the number of critical bands below 22 kHz.
  EXPECT_GE(layout.num_bands(), 18u);
  EXPECT_LE(layout.num_bands(), 28u);
}

TEST(PsymodelTest, HigherQualityMeansFinerSteps) {
  Prng prng(41);
  std::vector<double> coeffs(512);
  for (auto& c : coeffs) {
    c = prng.NextGaussian() * 0.1;
  }
  BandLayout layout = MakeBandLayout(44100, 512);
  auto steps_low = ComputeQuantSteps(coeffs, layout, 44100, 0);
  auto steps_high = ComputeQuantSteps(coeffs, layout, 44100, 10);
  ASSERT_EQ(steps_low.size(), layout.num_bands());
  for (size_t b = 0; b < steps_low.size(); ++b) {
    EXPECT_GT(steps_low[b], 0.0);
    EXPECT_GT(steps_high[b], 0.0);
    // Quality never makes steps coarser anywhere...
    EXPECT_LE(steps_high[b], steps_low[b]) << "band " << b;
    // ...and strictly refines them where masking (not the quality-
    // independent absolute threshold of hearing) is the binding limit,
    // i.e. below ~10 kHz for this content.
    size_t mid_bin = (layout.band_begin[b] + layout.band_begin[b + 1]) / 2;
    double center_hz = static_cast<double>(mid_bin) * 22050.0 / 512.0;
    if (center_hz < 10000.0) {
      EXPECT_LT(steps_high[b], steps_low[b]) << "band " << b;
    }
  }
}

TEST(PsymodelTest, LoudBandGetsCoarserStepThanQuietBand) {
  BandLayout layout = MakeBandLayout(44100, 512);
  std::vector<double> coeffs(512, 1e-6);
  // Make band 5 loud.
  for (size_t i = layout.band_begin[5]; i < layout.band_begin[6]; ++i) {
    coeffs[i] = 0.5;
  }
  auto steps = ComputeQuantSteps(coeffs, layout, 44100, 8);
  EXPECT_GT(steps[5], steps[12] * 10.0);
}

TEST(PsymodelTest, SilenceHitsAbsoluteThresholdFloor) {
  BandLayout layout = MakeBandLayout(44100, 512);
  std::vector<double> silence(512, 0.0);
  auto steps = ComputeQuantSteps(silence, layout, 44100, 10);
  for (double s : steps) {
    EXPECT_GT(s, 0.0);  // Absolute threshold keeps steps finite and nonzero.
  }
}

}  // namespace
}  // namespace espk
