// Distributed telemetry plane tests: glob matching, the collector-side
// store, the query engine against hand-computed values, the federated
// exposition format, and the end-to-end scenario — a five-speaker fleet
// scraped over a segment that gets squeezed hard enough to force timeouts,
// retries, and staleness, then recovers. Everything runs on the simulated
// clock, so the fault history is asserted bit-identical across runs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/obs/federation/fleet.h"
#include "src/obs/federation/query.h"
#include "src/obs/federation/render.h"
#include "src/obs/federation/sample.h"
#include "src/obs/federation/store.h"

namespace espk {
namespace {

// ----------------------------------------------------------------- Globs --

TEST(GlobMatchTest, StarsQuestionMarksAndLiterals) {
  EXPECT_TRUE(GlobMatch("es-0", "es-0"));
  EXPECT_FALSE(GlobMatch("es-0", "es-1"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*", "anything"));
  EXPECT_TRUE(GlobMatch("es-*", "es-12"));
  EXPECT_FALSE(GlobMatch("es-*", "rb-1"));
  EXPECT_TRUE(GlobMatch("es-?", "es-7"));
  EXPECT_FALSE(GlobMatch("es-?", "es-12"));
  EXPECT_TRUE(GlobMatch("*drops", "speaker.late_drops"));
  EXPECT_TRUE(GlobMatch("*.late_*", "speaker.late_drops"));
  // Backtracking: the first '*' must not swallow the 'b' the pattern needs.
  EXPECT_TRUE(GlobMatch("*b*c", "abxbyc"));
  EXPECT_FALSE(GlobMatch("*b*c", "ac"));
  EXPECT_TRUE(GlobMatch("", ""));
  EXPECT_FALSE(GlobMatch("", "x"));
}

// ----------------------------------------------------------------- Store --

MetricSample NumericSample(const std::string& name, Metric::Kind kind,
                           double value) {
  MetricSample sample;
  sample.name = name;
  sample.kind = kind;
  sample.value = value;
  return sample;
}

TEST(FleetStoreTest, IngestSeriesAndStaleness) {
  FleetStore store(/*series_capacity=*/4);
  // A station nobody has heard from reads as stale, not as missing.
  EXPECT_TRUE(store.IsStale("es-0"));
  EXPECT_EQ(store.FindStation("es-0"), nullptr);

  for (int t = 1; t <= 6; ++t) {
    StationSnapshot snap;
    snap.station = "es-0";
    snap.at = Seconds(t);
    snap.samples.push_back(NumericSample(
        "speaker.late_drops", Metric::Kind::kCounter, 10.0 * t));
    snap.samples.push_back(NumericSample(
        "speaker.queued_pcm_bytes", Metric::Kind::kGauge, 100.0 + t));
    store.Ingest(snap, Seconds(t));
  }
  EXPECT_FALSE(store.IsStale("es-0"));
  const FleetStore::StationRecord* record = store.FindStation("es-0");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->ingests, 6u);
  EXPECT_EQ(record->last_ingest_at, Seconds(6));
  EXPECT_EQ(record->metrics.size(), 2u);
  const MetricSample* latest = store.FindLatest("es-0", "speaker.late_drops");
  ASSERT_NE(latest, nullptr);
  EXPECT_DOUBLE_EQ(latest->value, 60.0);
  // The per-metric series is a bounded ring: six ingests, four retained.
  const TimeSeries* series = store.FindSeries("es-0", "speaker.late_drops");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->appended(), 6u);
  EXPECT_EQ(series->points().size(), 4u);
  EXPECT_DOUBLE_EQ(series->Latest().value_or(-1.0), 60.0);

  // Staleness is the collector's verdict: set by MarkStale, cleared by the
  // next successful ingest.
  store.MarkStale("es-0");
  EXPECT_TRUE(store.IsStale("es-0"));
  StationSnapshot again;
  again.station = "es-0";
  again.at = Seconds(7);
  store.Ingest(again, Seconds(7));
  EXPECT_FALSE(store.IsStale("es-0"));
  // Marking an unknown station creates a stale, data-free record so a
  // never-answering target still shows up in read-outs.
  store.MarkStale("ghost");
  EXPECT_TRUE(store.IsStale("ghost"));
  std::vector<std::string> stations = store.Stations();
  ASSERT_EQ(stations.size(), 2u);
  EXPECT_EQ(stations[0], "es-0");
  EXPECT_EQ(stations[1], "ghost");
}

// ----------------------------------------------------------------- Query --

std::vector<QueryRow> MustRun(const FleetStore& store, const std::string& q,
                              SimTime now) {
  Result<QueryOutput> out = RunQuery(store, q, now);
  EXPECT_TRUE(out.ok()) << q << ": " << out.status().ToString();
  return out.ok() ? out->rows : std::vector<QueryRow>{};
}

TEST(QueryEngineTest, HandComputedAggregatesAndRates) {
  FleetStore store(16);
  // es-0's counter grows 10/s, es-1's 5/s, sampled once a second.
  for (int t = 0; t <= 4; ++t) {
    for (const auto& [station, slope] :
         std::vector<std::pair<std::string, double>>{{"es-0", 10.0},
                                                     {"es-1", 5.0}}) {
      StationSnapshot snap;
      snap.station = station;
      snap.at = Seconds(t);
      snap.samples.push_back(NumericSample(
          "speaker.late_drops", Metric::Kind::kCounter, slope * t));
      store.Ingest(snap, Seconds(t));
    }
  }
  const SimTime now = Seconds(4);

  std::vector<QueryRow> instant =
      MustRun(store, "speaker.late_drops{station=\"es-*\"}", now);
  ASSERT_EQ(instant.size(), 2u);
  EXPECT_EQ(instant[0].station, "es-0");
  EXPECT_EQ(instant[0].metric, "speaker.late_drops");
  EXPECT_DOUBLE_EQ(instant[0].value, 40.0);
  EXPECT_EQ(instant[1].station, "es-1");
  EXPECT_DOUBLE_EQ(instant[1].value, 20.0);

  // Aggregators over the latest values {40, 20}, all hand-computed.
  EXPECT_DOUBLE_EQ(MustRun(store, "sum(speaker.late_drops)", now)[0].value,
                   60.0);
  EXPECT_DOUBLE_EQ(MustRun(store, "avg(speaker.late_drops)", now)[0].value,
                   30.0);
  EXPECT_DOUBLE_EQ(MustRun(store, "max(speaker.late_drops)", now)[0].value,
                   40.0);
  EXPECT_DOUBLE_EQ(MustRun(store, "min(speaker.late_drops)", now)[0].value,
                   20.0);
  EXPECT_DOUBLE_EQ(MustRun(store, "count(speaker.late_drops)", now)[0].value,
                   2.0);

  std::vector<QueryRow> grouped =
      MustRun(store, "avg by (station) (speaker.late_drops)", now);
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].station, "es-0");
  EXPECT_DOUBLE_EQ(grouped[0].value, 40.0);
  EXPECT_DOUBLE_EQ(grouped[1].value, 20.0);

  // rate() over the stored series: slope recovered exactly, per station.
  std::vector<QueryRow> rates =
      MustRun(store, "rate(speaker.late_drops[4s])", now);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0].value, 10.0);
  EXPECT_DOUBLE_EQ(rates[1].value, 5.0);
  EXPECT_DOUBLE_EQ(
      MustRun(store, "sum(rate(speaker.late_drops[4s]))", now)[0].value,
      15.0);
  EXPECT_DOUBLE_EQ(
      MustRun(store, "sum(speaker.late_drops{station=\"es-1\"})",
              now)[0].value,
      20.0);

  // A valid query matching nothing: zero rows, except count() which says 0.
  EXPECT_TRUE(MustRun(store, "no.such.metric", now).empty());
  EXPECT_TRUE(MustRun(store, "sum(no.such.metric)", now).empty());
  std::vector<QueryRow> count_none = MustRun(store, "count(no.such.*)", now);
  ASSERT_EQ(count_none.size(), 1u);
  EXPECT_DOUBLE_EQ(count_none[0].value, 0.0);
}

TEST(QueryEngineTest, QuantileFromStoredHistogram) {
  FleetStore store(16);
  StationSnapshot snap;
  snap.station = "es-0";
  snap.at = Seconds(1);
  MetricSample histogram;
  histogram.name = "speaker.lateness_ms";
  histogram.kind = Metric::Kind::kHistogram;
  histogram.histogram.lo = 0.0;
  histogram.histogram.hi = 100.0;
  histogram.histogram.buckets.assign(10, 0);
  histogram.histogram.buckets[2] = 4;  // All four samples land in [20, 30).
  histogram.histogram.count = 4;
  histogram.histogram.sum = 100.0;
  histogram.value = 100.0;
  snap.samples.push_back(histogram);
  snap.samples.push_back(NumericSample("speaker.late_drops",
                                       Metric::Kind::kCounter, 7.0));
  store.Ingest(snap, Seconds(1));
  const SimTime now = Seconds(1);

  // Linear interpolation inside the only occupied bucket, by hand:
  // q=0.25 -> 22.5, q=0.5 -> 25, q=1.0 -> 30 (the bucket's upper edge).
  EXPECT_DOUBLE_EQ(
      MustRun(store, "quantile(0.25, speaker.lateness_ms)", now)[0].value,
      22.5);
  EXPECT_DOUBLE_EQ(
      MustRun(store, "quantile(0.5, speaker.lateness_ms)", now)[0].value,
      25.0);
  EXPECT_DOUBLE_EQ(
      MustRun(store, "quantile(1.0, speaker.lateness_ms)", now)[0].value,
      30.0);
  // quantile() only speaks histogram: the counter is silently skipped even
  // though the glob matches it.
  std::vector<QueryRow> rows = MustRun(store, "quantile(0.5, speaker.*)", now);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].metric, "speaker.lateness_ms");
}

TEST(QueryEngineTest, RejectsBadSyntaxWithInvalidArgument) {
  FleetStore store(4);
  for (const char* bad : {
           "",
           "avg by (speaker) (m)",   // Only `by (station)` exists.
           "rate(m[5x])",            // Bad duration unit.
           "rate(m)",                // rate() needs a window.
           "quantile(1.5, m)",       // Out-of-range quantile.
           "m{label=\"x\"}",         // Only the station label exists.
           "m{station=\"x}",         // Unterminated string.
           "sum(m) trailing",
       }) {
    Result<QueryOutput> out = RunQuery(store, bad, Seconds(1));
    EXPECT_FALSE(out.ok()) << "accepted: " << bad;
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // An aggregator keyword not applied as one is an ordinary metric glob.
  StationSnapshot snap;
  snap.station = "s";
  snap.at = Seconds(1);
  snap.samples.push_back(NumericSample("count", Metric::Kind::kGauge, 7.0));
  store.Ingest(snap, Seconds(1));
  std::vector<QueryRow> rows = MustRun(store, "count", Seconds(1));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 7.0);
}

// ------------------------------------------------------------ Exposition --

// Structural check over the Prometheus text format: comment lines are HELP
// or TYPE, every sample line is `name{station="..."[,quantile="..."]} value`
// with a fully parseable value.
void ValidateExposition(const std::string& text) {
  size_t samples = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "exposition must end with newline";
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const size_t brace = line.find("{station=\"");
    ASSERT_NE(brace, std::string::npos) << line;
    EXPECT_GT(brace, 0u) << line;
    const size_t close = line.find("} ", brace);
    ASSERT_NE(close, std::string::npos) << line;
    const std::string value = line.substr(close + 2);
    char* parse_end = nullptr;
    (void)std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(parse_end, value.c_str() + value.size()) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(FederatedExpositionTest, RendersFamiliesWithStationLabels) {
  FleetStore store(8);
  for (const char* station : {"es-0", "es-1"}) {
    StationSnapshot snap;
    snap.station = station;
    snap.at = Seconds(2);
    snap.samples.push_back(NumericSample("speaker.late_drops",
                                         Metric::Kind::kCounter, 3.0));
    MetricSample histogram;
    histogram.name = "speaker.lateness_ms";
    histogram.kind = Metric::Kind::kHistogram;
    histogram.histogram.lo = 0.0;
    histogram.histogram.hi = 10.0;
    histogram.histogram.buckets.assign(10, 0);
    histogram.histogram.buckets[0] = 2;
    histogram.histogram.count = 2;
    histogram.histogram.sum = 1.0;
    snap.samples.push_back(histogram);
    store.Ingest(snap, Seconds(2));
  }
  store.MarkStale("es-1");
  const std::string text = FederatedExposition(store);
  ValidateExposition(text);
  // Scrape health leads, one row per station.
  EXPECT_NE(text.find("espk_up{station=\"es-0\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("espk_up{station=\"es-1\"} 0\n"), std::string::npos)
      << text;
  // One family, HELP/TYPE once, a labelled line per station.
  EXPECT_NE(text.find("# TYPE espk_speaker_late_drops counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("espk_speaker_late_drops{station=\"es-0\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("espk_speaker_late_drops{station=\"es-1\"} 3\n"),
            std::string::npos)
      << text;
  // Histograms federate as summaries with quantile labels plus _sum/_count.
  EXPECT_NE(
      text.find("espk_speaker_lateness_ms{station=\"es-0\",quantile=\"0.5\"}"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("espk_speaker_lateness_ms_count{station=\"es-0\"} 2\n"),
            std::string::npos)
      << text;
}

// ------------------------------------------------------------ End to end --

// Five speakers and one channel, the fleet plane scraping all seven
// stations (console locally, es-0..4 and rb-1 over the wire). At t=6s the
// segment is squeezed to 1 Mbps — below the raw CD stream's needs — so the
// transmit queue overflows and scrape traffic is starved along with the
// audio; at t=14s bandwidth is restored. Deterministic end to end.
struct FleetRunResult {
  std::vector<std::string> stations;
  std::set<std::string> stale_mid_squeeze;
  int stale_at_end = 0;
  uint64_t cycles = 0;
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t timeouts = 0;
  uint64_t retries = 0;
  uint64_t misses = 0;
  uint64_t stale_transitions = 0;
  uint64_t chunks_received = 0;
  uint64_t scrape_timeouts_counter = 0;
  uint64_t es0_ingests = 0;
  double query_sum_chunks = 0.0;
  double hand_sum_chunks = 0.0;
  double query_rate_es0 = 0.0;
  double hand_rate_es0 = 0.0;
  std::string exposition;
  std::string dashboard;
};

FleetRunResult RunFleetScenario() {
  SystemOptions sys_options;
  sys_options.lan.tx_queue_limit = 64 * 1024;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  for (int i = 0; i < 5; ++i) {
    SpeakerOptions so;
    so.name = "es-" + std::to_string(i);
    so.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(so, channel->group);
  }
  FleetPlane plane(&system);
  plane.Start();

  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(21), opts)
                  .ok());
  system.sim()->ScheduleAt(Seconds(6), [&system] {
    system.lan()->set_bandwidth_bps(1e6);
  });
  system.sim()->ScheduleAt(Seconds(14), [&system] {
    system.lan()->set_bandwidth_bps(100e6);
  });

  FleetRunResult result;
  // Deep into the squeeze, which remote stations has the collector written
  // off as stale?
  system.sim()->ScheduleAt(Seconds(13), [&result, &plane] {
    for (const std::string& station : plane.store()->Stations()) {
      if (plane.store()->IsStale(station)) {
        result.stale_mid_squeeze.insert(station);
      }
    }
  });
  system.sim()->RunUntil(Seconds(24));

  const FleetStore& store = *plane.store();
  result.stations = store.Stations();
  for (const std::string& station : result.stations) {
    result.stale_at_end += store.IsStale(station) ? 1 : 0;
  }
  FleetCollector* collector = plane.collector();
  result.cycles = collector->cycles();
  result.attempts = collector->attempts();
  result.successes = collector->successes();
  result.timeouts = collector->timeouts();
  result.retries = collector->retries();
  result.misses = collector->misses();
  result.stale_transitions = collector->stale_transitions();
  result.chunks_received = collector->chunks_received();
  if (const Metric* m = system.metrics()->Find("scrape.timeouts")) {
    result.scrape_timeouts_counter = static_cast<const Counter*>(m)->value();
  }
  if (const FleetStore::StationRecord* record = store.FindStation("es-0")) {
    result.es0_ingests = record->ingests;
  }

  // Query engine vs the same numbers read straight out of the store.
  const SimTime now = system.sim()->now();
  Result<QueryOutput> sum = RunQuery(
      store, "sum(speaker.chunks_played{station=\"es-*\"})", now);
  if (sum.ok() && !sum->rows.empty()) {
    result.query_sum_chunks = sum->rows[0].value;
  }
  for (int i = 0; i < 5; ++i) {
    const MetricSample* latest = store.FindLatest(
        "es-" + std::to_string(i), "speaker.chunks_played");
    if (latest != nullptr) {
      result.hand_sum_chunks += latest->value;
    }
  }
  Result<QueryOutput> rate = RunQuery(
      store, "rate(speaker.packets_received{station=\"es-0\"}[5s])", now);
  if (rate.ok() && !rate->rows.empty()) {
    result.query_rate_es0 = rate->rows[0].value;
  }
  if (const TimeSeries* series =
          store.FindSeries("es-0", "speaker.packets_received")) {
    result.hand_rate_es0 = series->WindowRatePerSec(now, Seconds(5));
  }

  result.exposition = FederatedExposition(store);
  DashboardOptions dash;
  dash.queries = {
      "sum(speaker.chunks_played{station=\"es-*\"})",
      "avg by (station) (speaker.late_drops)",
      "rate(speaker.packets_received{station=\"es-*\"}[5s])",
  };
  result.dashboard = RenderFleetDashboard(store, now, dash);
  return result;
}

// The rebroadcaster's encode metrics measure real host CPU — the one
// legitimately nondeterministic signal — so determinism comparisons drop
// any line mentioning them (same convention as the health-layer tests).
std::string StripEncodeLines(const std::string& text) {
  std::string out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    if (line.find("encode") == std::string::npos && !line.empty()) {
      out += line;
      out.push_back('\n');
    }
    start = end + 1;
  }
  return out;
}

TEST(FederationEndToEndTest, FleetScrapeSurvivesBandwidthSqueeze) {
  FleetRunResult run = RunFleetScenario();

  // All seven stations exist in the store: the local console, five
  // speakers, and the channel's rebroadcaster.
  ASSERT_EQ(run.stations.size(), 7u);
  EXPECT_EQ(run.stations[0], "console");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(run.stations[1 + i], "es-" + std::to_string(i));
  }
  EXPECT_EQ(run.stations[6], "rb-1");

  // The squeeze starves the scrape path: attempts time out, retries fire,
  // whole cycles miss, and targets go stale mid-squeeze...
  EXPECT_GT(run.timeouts, 0u);
  EXPECT_GT(run.retries, 0u);
  EXPECT_GT(run.misses, 0u);
  EXPECT_GE(run.stale_transitions, 1u);
  EXPECT_FALSE(run.stale_mid_squeeze.empty());
  // ...but never the local console, which is ingested without the wire.
  EXPECT_EQ(run.stale_mid_squeeze.count("console"), 0u);
  // After the squeeze lifts, every station is scraped fresh again.
  EXPECT_EQ(run.stale_at_end, 0);
  EXPECT_GT(run.successes, run.timeouts == 0 ? 0u : 5u);
  EXPECT_GT(run.chunks_received, 0u);
  EXPECT_GT(run.es0_ingests, 5u);
  // Self-telemetry mirrors into the console registry as scrape.* counters.
  EXPECT_EQ(run.scrape_timeouts_counter, run.timeouts);
  // Accounting sanity: every attempt either succeeded, timed out, or was
  // still in flight at shutdown; retries are attempts beyond the first.
  EXPECT_GE(run.attempts, run.successes + run.timeouts);
  EXPECT_LE(run.attempts - run.retries,
            run.cycles * 7u);  // First attempts <= cycles * targets.

  // The query engine agrees with values read straight out of the store.
  EXPECT_GT(run.hand_sum_chunks, 0.0);
  EXPECT_EQ(run.query_sum_chunks, run.hand_sum_chunks);
  EXPECT_GT(run.hand_rate_es0, 0.0);
  EXPECT_EQ(run.query_rate_es0, run.hand_rate_es0);

  // The federated exposition parses and reports every station fresh.
  ValidateExposition(run.exposition);
  for (const std::string& station : run.stations) {
    EXPECT_NE(
        run.exposition.find("espk_up{station=\"" + station + "\"} 1\n"),
        std::string::npos)
        << station;
  }
  // The dashboard carries the station table and the query sections.
  EXPECT_NE(run.dashboard.find("==== FLEET DASHBOARD @"), std::string::npos);
  EXPECT_NE(run.dashboard.find("es-4"), std::string::npos);
  EXPECT_NE(run.dashboard.find(">> sum(speaker.chunks_played"),
            std::string::npos);
  EXPECT_EQ(run.dashboard.find("STALE"), std::string::npos) << run.dashboard;
}

TEST(FederationEndToEndTest, FaultHistoryIsBitIdenticalAcrossRuns) {
  FleetRunResult a = RunFleetScenario();
  FleetRunResult b = RunFleetScenario();
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.stale_transitions, b.stale_transitions);
  EXPECT_EQ(a.stale_mid_squeeze, b.stale_mid_squeeze);
  EXPECT_EQ(a.query_sum_chunks, b.query_sum_chunks);
  EXPECT_EQ(StripEncodeLines(a.exposition), StripEncodeLines(b.exposition));
  EXPECT_EQ(StripEncodeLines(a.dashboard), StripEncodeLines(b.dashboard));
}

}  // namespace
}  // namespace espk
