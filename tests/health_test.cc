// Health layer tests: time-series sampling, SLO alert hysteresis, flight
// recorder postmortems, Chrome trace export, and the end-to-end fault
// scenario — a deterministic bandwidth squeeze that drives multiple SLO
// rules through fire -> trap-delivered -> resolve.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench/json_lite.h"
#include "src/base/logging.h"
#include "src/core/system.h"
#include "src/mgmt/agent.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/health.h"
#include "src/obs/metrics.h"

namespace espk {
namespace {

// ---------------------------------------------------------------- TimeSeries

TEST(TimeSeriesTest, RingBoundsAndTailOrder) {
  TimeSeries series("s", /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    series.Append(Seconds(i), static_cast<double>(i));
  }
  EXPECT_EQ(series.points().size(), 3u);
  EXPECT_EQ(series.appended(), 5u);
  // Oldest evicted first; Tail returns oldest-first.
  std::vector<SeriesPoint> tail = series.Tail(10);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].value, 2.0);
  EXPECT_EQ(tail[2].value, 4.0);
  EXPECT_EQ(series.Tail(2).size(), 2u);
  EXPECT_EQ(series.Tail(2)[0].value, 3.0);
  EXPECT_EQ(series.Latest().value_or(-1.0), 4.0);
}

TEST(TimeSeriesTest, WindowRateUsesBaselineBeforeWindowStart) {
  TimeSeries series("counter", 16);
  // A counter sampled every 100 ms, growing 10/sample = 100/s.
  for (int i = 0; i <= 10; ++i) {
    series.Append(Milliseconds(100 * i), 10.0 * i);
  }
  // Window (0.0s, 1.0s]: baseline is the point at exactly 0 s.
  EXPECT_DOUBLE_EQ(series.WindowRatePerSec(Seconds(1), Seconds(1)), 100.0);
  // Short window still spans one full second of growth via its baseline.
  EXPECT_DOUBLE_EQ(
      series.WindowRatePerSec(Seconds(1), Milliseconds(300)), 100.0);
  // Empty series / single point: no rate.
  TimeSeries empty("e", 4);
  EXPECT_EQ(empty.WindowRatePerSec(Seconds(1), Seconds(1)), 0.0);
  empty.Append(Seconds(1), 5.0);
  EXPECT_EQ(empty.WindowRatePerSec(Seconds(1), Seconds(1)), 0.0);
}

TEST(TimeSeriesTest, WindowAggregates) {
  TimeSeries series("gauge", 16);
  series.Append(Milliseconds(100), 4.0);
  series.Append(Milliseconds(200), 8.0);
  series.Append(Milliseconds(300), 6.0);
  const SimTime now = Milliseconds(300);
  EXPECT_DOUBLE_EQ(series.WindowMean(now, Milliseconds(300)), 6.0);
  EXPECT_DOUBLE_EQ(series.WindowMax(now, Milliseconds(300)), 8.0);
  EXPECT_DOUBLE_EQ(series.WindowMin(now, Milliseconds(300)), 4.0);
  // Window excludes points at or before now - window.
  EXPECT_DOUBLE_EQ(series.WindowMean(now, Milliseconds(100)), 6.0);
  EXPECT_EQ(series.WindowMax(Seconds(10), Milliseconds(100)), 0.0);
}

TEST(TimeSeriesTest, WindowQueriesAcrossRingWrap) {
  // Capacity 3; six appends evict the first three, so every window query
  // below runs against a ring that has wrapped twice.
  TimeSeries series("wrapped", /*capacity=*/3);
  for (int i = 1; i <= 6; ++i) {
    series.Append(Seconds(i), 10.0 * i);
  }
  ASSERT_EQ(series.points().size(), 3u);
  ASSERT_EQ(series.appended(), 6u);
  // Aggregates see only the surviving points (t=4,5,6s).
  EXPECT_DOUBLE_EQ(series.WindowMean(Seconds(6), Seconds(3)), 50.0);
  EXPECT_DOUBLE_EQ(series.WindowMax(Seconds(6), Seconds(10)), 60.0);
  EXPECT_DOUBLE_EQ(series.WindowMin(Seconds(6), Seconds(10)), 40.0);
  // A window aimed entirely at the evicted region is empty, not stale.
  EXPECT_DOUBLE_EQ(series.WindowMean(Seconds(3), Seconds(3)), 0.0);
  EXPECT_DOUBLE_EQ(series.WindowMax(Seconds(3), Seconds(3)), 0.0);
  // Rate over a window wider than retained history falls back to the
  // oldest surviving point as baseline: (60-40)/(6s-4s) = 10/s.
  EXPECT_DOUBLE_EQ(series.WindowRatePerSec(Seconds(6), Seconds(10)), 10.0);
}

TEST(TimeSeriesTest, WindowRateWithZeroOrOnePointsInWindow) {
  TimeSeries series("sparse", 16);
  series.Append(Seconds(0), 0.0);
  series.Append(Seconds(5), 50.0);
  // Exactly one point inside (4s, 5s]; the point at 0s serves as the
  // baseline, so the rate spans the real 5 s of growth: 10/s.
  EXPECT_DOUBLE_EQ(series.WindowRatePerSec(Seconds(5), Seconds(1)), 10.0);
  // Window positioned after every point: zero points inside, zero rate.
  EXPECT_DOUBLE_EQ(series.WindowRatePerSec(Seconds(20), Seconds(1)), 0.0);
  // One point in the window and nothing before it: no span, zero rate.
  TimeSeries lone("lone", 16);
  lone.Append(Seconds(5), 50.0);
  EXPECT_DOUBLE_EQ(lone.WindowRatePerSec(Seconds(5), Seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(lone.WindowRatePerSec(Seconds(5), Seconds(10)), 0.0);
}

// --------------------------------------------------------- TimeSeriesSampler

TEST(SamplerTest, SamplesCountersGaugesAndPercentilesOnSimClock) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  Counter* counter = registry.GetCounter("c");
  double level = 0.0;
  registry.GetGauge("g", [&level] { return level; });
  HistogramMetric* histogram = registry.GetHistogram("h", 0.0, 100.0, 100);

  SamplerOptions options;
  options.period = Milliseconds(100);
  TimeSeriesSampler sampler(&sim, &registry, options);
  TimeSeries* c_series = sampler.Watch("c");
  TimeSeries* g_series = sampler.Watch("g");
  TimeSeries* p_series = sampler.WatchPercentile("h", 0.99);
  ASSERT_NE(c_series, nullptr);
  ASSERT_NE(g_series, nullptr);
  ASSERT_NE(p_series, nullptr);
  EXPECT_EQ(p_series->name(), "h.p99");
  // Histograms need WatchPercentile; plain Watch refuses them.
  {
    ScopedLogCapture capture;
    EXPECT_EQ(sampler.Watch("h"), nullptr);
    EXPECT_EQ(sampler.Watch("missing"), nullptr);
  }

  // Drive the system: counter +1 per 50 ms, gauge follows sim seconds.
  PeriodicTask driver(&sim, Milliseconds(50), [&](SimTime now) {
    counter->Increment();
    level = ToSecondsF(now);
    histogram->Observe(42.0);
  });
  driver.Start();
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sim.RunUntil(Seconds(2));

  EXPECT_GE(sampler.ticks(), 19u);
  EXPECT_NEAR(c_series->WindowRatePerSec(Seconds(2), Seconds(1)), 20.0, 1.0);
  EXPECT_GT(g_series->Latest().value_or(0.0), 1.8);
  // Histogram percentiles interpolate within the bucket, so p99 of a
  // constant 42 lands just under 43.
  EXPECT_NEAR(p_series->Latest().value_or(0.0), 42.5, 0.6);

  sampler.Stop();
  uint64_t ticks = sampler.ticks();
  sim.RunUntil(Seconds(3));
  EXPECT_EQ(sampler.ticks(), ticks);  // Stopped means stopped.
}

// -------------------------------------------------------------- AlertEngine

// Drives the engine directly against a hand-fed series.
class AlertEngineTest : public ::testing::Test {
 protected:
  AlertEngineTest() : registry_(&sim_), sampler_(&sim_, &registry_) {
    signal_ = registry_.GetCounter("sig");
    series_ = sampler_.Watch("sig");
  }

  Simulation sim_;
  MetricsRegistry registry_;
  TimeSeriesSampler sampler_;
  Counter* signal_ = nullptr;
  TimeSeries* series_ = nullptr;
};

TEST_F(AlertEngineTest, HysteresisHoldsThroughForAndClearDurations) {
  AlertEngine engine(&sim_, &sampler_);
  engine.AddRule({.name = "high",
                  .series = "sig",
                  .aggregate = AlertAggregate::kLatest,
                  .comparison = AlertComparison::kAbove,
                  .threshold = 10.0,
                  .for_duration = Milliseconds(250),
                  .clear_duration = Milliseconds(250)});

  auto step = [&](SimTime at, uint64_t value) {
    series_->Append(at, static_cast<double>(value));
    engine.Evaluate(at);
  };

  step(Milliseconds(100), 5);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kInactive);
  // Breach begins: pending, not yet firing.
  step(Milliseconds(200), 20);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kPending);
  // A dip resets the pending clock.
  step(Milliseconds(300), 5);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kInactive);
  // Sustained breach: fires once for_duration has been held.
  step(Milliseconds(400), 20);
  step(Milliseconds(500), 20);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kPending);
  step(Milliseconds(700), 20);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kFiring);
  EXPECT_EQ(engine.fired_total(), 1u);
  EXPECT_EQ(engine.ActiveAlerts(), std::vector<std::string>{"high"});
  // Recovery: clearing, with relapse pushing back to firing silently.
  step(Milliseconds(800), 5);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kClearing);
  step(Milliseconds(900), 20);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kFiring);
  EXPECT_EQ(engine.fired_total(), 1u);  // Relapse is not a second fire.
  // Clean recovery held for clear_duration resolves.
  step(Milliseconds(1000), 5);
  step(Milliseconds(1300), 5);
  EXPECT_EQ(engine.StateOf("high"), AlertState::kInactive);
  EXPECT_EQ(engine.resolved_total(), 1u);
  ASSERT_EQ(engine.log().size(), 2u);
  EXPECT_TRUE(engine.log()[0].firing);
  EXPECT_FALSE(engine.log()[1].firing);
  EXPECT_EQ(engine.log()[1].rule, "high");
  EXPECT_EQ(engine.TransitionsOf("high"), 2u);
}

TEST_F(AlertEngineTest, ZeroDurationsFireAndResolveImmediately) {
  AlertEngine engine(&sim_, &sampler_);
  engine.AddRule({.name = "instant",
                  .series = "sig",
                  .threshold = 10.0});
  series_->Append(Milliseconds(100), 20.0);
  engine.Evaluate(Milliseconds(100));
  EXPECT_EQ(engine.StateOf("instant"), AlertState::kFiring);
  series_->Append(Milliseconds(200), 0.0);
  engine.Evaluate(Milliseconds(200));
  EXPECT_EQ(engine.StateOf("instant"), AlertState::kInactive);
  EXPECT_EQ(engine.fired_total(), 1u);
  EXPECT_EQ(engine.resolved_total(), 1u);
}

TEST_F(AlertEngineTest, LowWatermarkRuleArmsOnlyAfterHealthySignal) {
  AlertEngine engine(&sim_, &sampler_);
  engine.AddRule({.name = "starved",
                  .series = "sig",
                  .aggregate = AlertAggregate::kLatest,
                  .comparison = AlertComparison::kBelow,
                  .threshold = 10.0,
                  .requires_arming = true});
  // The signal starts at zero — breached, but the rule is not armed, so it
  // must not fire at boot.
  series_->Append(Milliseconds(100), 0.0);
  engine.Evaluate(Milliseconds(100));
  EXPECT_EQ(engine.StateOf("starved"), AlertState::kInactive);
  EXPECT_EQ(engine.fired_total(), 0u);
  // Healthy once: armed.
  series_->Append(Milliseconds(200), 50.0);
  engine.Evaluate(Milliseconds(200));
  // Starvation now fires.
  series_->Append(Milliseconds(300), 0.0);
  engine.Evaluate(Milliseconds(300));
  EXPECT_EQ(engine.StateOf("starved"), AlertState::kFiring);
}

TEST_F(AlertEngineTest, RegistryAttachedEnginePublishesStateGauges) {
  AlertEngine engine(&sim_, &sampler_, &registry_);
  engine.AddRule({.name = "high", .series = "sig", .threshold = 10.0});
  const auto* state =
      static_cast<const Gauge*>(registry_.Find("alert.high.state"));
  const auto* value =
      static_cast<const Gauge*>(registry_.Find("alert.high.value"));
  const auto* transitions =
      static_cast<const Gauge*>(registry_.Find("alert.high.transitions"));
  ASSERT_NE(state, nullptr);
  ASSERT_NE(value, nullptr);
  ASSERT_NE(transitions, nullptr);
  EXPECT_EQ(state->Value(), 0.0);
  series_->Append(Milliseconds(100), 42.0);
  engine.Evaluate(Milliseconds(100));
  EXPECT_EQ(state->Value(), static_cast<double>(AlertState::kFiring));
  EXPECT_EQ(value->Value(), 42.0);
  EXPECT_EQ(transitions->Value(), 1.0);
  // And therefore in the Prometheus exposition too.
  EXPECT_NE(registry_.TextExposition().find("espk_alert_high_state 2"),
            std::string::npos);
}

TEST_F(AlertEngineTest, RuleOverMissingSeriesStaysQuiet) {
  AlertEngine engine(&sim_, &sampler_);
  engine.AddRule({.name = "ghost", .series = "nope", .threshold = -1.0});
  engine.Evaluate(Milliseconds(100));
  // Aggregate over a missing series is 0.0, which breaches "> -1" — the
  // point is it must not crash; state machinery still runs.
  EXPECT_EQ(engine.StateOf("ghost"), AlertState::kFiring);
  EXPECT_EQ(engine.StateOf("unknown-rule"), AlertState::kInactive);
}

// ------------------------------------------------------------ FlightRecorder

TEST(FlightRecorderTest, FiringTransitionProducesValidPostmortem) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  Counter* signal = registry.GetCounter("sig", "test signal");
  PacketTracer tracer(&sim);
  TimeSeriesSampler sampler(&sim, &registry);
  sampler.Watch("sig");
  AlertEngine engine(&sim, &sampler, &registry);
  engine.AddRule({.name = "high",
                  .series = "sig",
                  .threshold = 10.0,
                  .help = "signal too high"});
  FlightRecorderOptions options;
  options.trace_events = 8;
  options.series_points = 4;
  FlightRecorder recorder(&sim, &sampler, &engine, &tracer, &registry,
                          options);

  for (uint32_t seq = 0; seq < 20; ++seq) {
    tracer.Record(1, seq, TraceStage::kEncode, 3);
  }
  sim.ScheduleAt(Milliseconds(500), [&] {
    signal->Increment(42);
    sampler.SampleNow();
    engine.Evaluate(sim.now());
  });
  sim.Run();

  ASSERT_EQ(recorder.recorded(), 1u);
  ASSERT_EQ(recorder.postmortems().size(), 1u);
  const Postmortem& postmortem = recorder.postmortems().front();
  EXPECT_EQ(postmortem.rule, "high");
  EXPECT_EQ(postmortem.at, Milliseconds(500));
  EXPECT_TRUE(postmortem.path.empty());  // Memory-only by default.

  const std::string& json = postmortem.json;
  // The whole nested document is syntactically valid JSON.
  Status syntax = CheckJsonSyntax(json);
  EXPECT_TRUE(syntax.ok()) << syntax.ToString();
  // Key sections present: alert identity, rule, series tail, trace window,
  // full exposition.
  EXPECT_NE(json.find("\"alert\": \"high\""), std::string::npos);
  EXPECT_NE(json.find("\"observed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"help\": \"signal too high\""), std::string::npos);
  EXPECT_NE(json.find("\"sig\": [["), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"encode\""), std::string::npos);
  EXPECT_NE(json.find("espk_sig 42"), std::string::npos);
  // Only the last `trace_events` tracer events are included.
  EXPECT_EQ(json.find("\"seq\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"seq\": 19"), std::string::npos);

  // Resolves do not add postmortems.
  sim.ScheduleAt(Seconds(1), [&] {
    registry.ResetAll();
    sampler.SampleNow();
    engine.Evaluate(sim.now());
  });
  sim.Run();
  EXPECT_EQ(engine.resolved_total(), 1u);
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightRecorderTest, PostmortemRingIsBounded) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  Counter* signal = registry.GetCounter("sig");
  TimeSeriesSampler sampler(&sim, &registry);
  sampler.Watch("sig");
  AlertEngine engine(&sim, &sampler);
  engine.AddRule({.name = "flappy", .series = "sig", .threshold = 10.0});
  FlightRecorderOptions options;
  options.max_postmortems = 3;
  FlightRecorder recorder(&sim, &sampler, &engine, nullptr, nullptr,
                          options);

  // Flap the alert 5 times across sim time.
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(Seconds(1 + 2 * i), [&] {
      signal->Increment(100);
      sampler.SampleNow();
      engine.Evaluate(sim.now());
    });
    sim.ScheduleAt(Seconds(2 + 2 * i), [&] {
      registry.ResetAll();
      sampler.SampleNow();
      engine.Evaluate(sim.now());
    });
  }
  sim.Run();
  EXPECT_EQ(recorder.recorded(), 5u);
  EXPECT_EQ(recorder.postmortems().size(), 3u);
  // The survivors are the newest three fires.
  EXPECT_EQ(recorder.postmortems().front().at, Seconds(5));
  EXPECT_EQ(recorder.postmortems().back().at, Seconds(9));
}

// --------------------------------------------------------------- ChromeTrace

TEST(ChromeTraceTest, ExportIsValidJsonWithInstantAndSpanEvents) {
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.Record(1, 7, TraceStage::kEncode, 2);
  sim.ScheduleAt(Milliseconds(3), [&] {
    tracer.Record(1, 7, TraceStage::kPlay, 5);
    tracer.Record(2, 1, TraceStage::kEncode, 2);  // Single-stage packet.
  });
  sim.Run();

  std::string json = ChromeTraceJson(tracer);
  Status syntax = CheckJsonSyntax(json);
  ASSERT_TRUE(syntax.ok()) << syntax.ToString();
  // Instant events per stage, on the (pid = stream, tid = node) track.
  EXPECT_NE(json.find("\"name\": \"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"play\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // Async begin/end span for the multi-stage packet only.
  EXPECT_NE(json.find("\"name\": \"pkt 1:7\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"e\""), std::string::npos);
  EXPECT_EQ(json.find("\"pkt 2:1\""), std::string::npos);
  // Timestamps in microseconds: the play event sits at 3000 us.
  EXPECT_NE(json.find("\"ts\": 3000.000"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyTracerExportsEmptyEventArray) {
  Simulation sim;
  PacketTracer tracer(&sim);
  std::string json = ChromeTraceJson(tracer);
  EXPECT_TRUE(CheckJsonSyntax(json).ok());
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
}

// ---------------------------------------------------- JSON syntax validator

TEST(JsonSyntaxTest, AcceptsNestedAndRejectsMalformed) {
  EXPECT_TRUE(CheckJsonSyntax("{\"a\": [1, 2, {\"b\": null}], \"c\": -1e3}")
                  .ok());
  EXPECT_TRUE(CheckJsonSyntax("[]").ok());
  EXPECT_TRUE(CheckJsonSyntax("\"str with \\u00e9 and \\n\"").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"a\": }").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"a\": 1,}").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(CheckJsonSyntax("\"unterminated").ok());
  EXPECT_FALSE(CheckJsonSyntax("{\"bad\nnewline\": 1}").ok());
  EXPECT_FALSE(CheckJsonSyntax("\"bad \\uZZZZ escape\"").ok());
}

// ------------------------------------------------- End-to-end fault scenario

struct SqueezeRunResult {
  std::string trap_log;
  std::string postmortems;
  std::string chrome_trace;
  std::set<std::string> fired_rules;
  std::set<std::string> resolved_rules;
  uint64_t traps_received = 0;
  uint32_t max_trap_seq = 0;
  uint64_t sequence_gaps = 0;
  uint64_t sequence_gaps_counter = 0;
  std::set<std::string> engine_fired_rules;
  AlertState queue_drop_final = AlertState::kInactive;
  AlertState sync_drift_final = AlertState::kInactive;
  bool postmortems_valid = false;
  bool chrome_trace_valid = false;
};

// Postmortems embed the full Prometheus exposition, which includes real
// host-CPU codec timings (encode_cpu_seconds and friends) — the one
// legitimately nondeterministic signal in the system. Everything on the sim
// clock must still be bit-identical, so the determinism comparison drops
// only the exposition line.
std::string StripExposition(const std::string& postmortems) {
  std::string out;
  size_t start = 0;
  while (start < postmortems.size()) {
    size_t end = postmortems.find('\n', start);
    if (end == std::string::npos) {
      end = postmortems.size();
    }
    std::string_view line(postmortems.data() + start, end - start);
    if (line.find("\"exposition\":") == std::string_view::npos) {
      out.append(line);
      out.push_back('\n');
    }
    start = end + 1;
  }
  return out;
}

// A raw CD-quality stream through a healthy 100 Mbps segment; at t=6s the
// segment is squeezed to 1 Mbps (less than the stream needs), backing up
// and overflowing the shallow transmit queue; at t=14s bandwidth is
// restored. Entirely deterministic — no randomness anywhere in the fault.
SqueezeRunResult RunBandwidthSqueezeScenario() {
  SystemOptions sys_options;
  sys_options.lan.tx_queue_limit = 64 * 1024;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  SpeakerOptions so;
  so.name = "es";
  so.decode_speed_factor = 0.05;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);

  EthernetSpeakerSystem::HealthRuleDefaults rules;
  rules.queue_drop_rate_per_sec = 1.0;
  rules.deadline_miss_rate_per_sec = 1.0;
  HealthMonitor* health = system.EnableHealthMonitoring({}, rules);

  // Trap path: the speaker's management agent watches the engine and the
  // console collects the traps.
  SpeakerAgent agent(system.sim(), system.NicOf(speaker), speaker);
  agent.WatchAlerts(health->engine());
  auto console_nic = system.lan()->CreateNic();
  MetricsRegistry console_metrics(system.sim());
  MgmtConsole console(system.sim(), console_nic.get(), &console_metrics);

  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(21), opts)
                  .ok());

  system.sim()->ScheduleAt(Seconds(6), [&system] {
    system.lan()->set_bandwidth_bps(1e6);
  });
  system.sim()->ScheduleAt(Seconds(14), [&system] {
    system.lan()->set_bandwidth_bps(100e6);
  });
  system.sim()->RunUntil(Seconds(24));

  SqueezeRunResult result;
  for (const MgmtTrap& trap : console.trap_log()) {
    std::ostringstream os;
    os << trap.trap_seq << " " << trap.source << " "
       << (trap.firing ? "FIRE" : "RESOLVE") << " " << trap.rule << " "
       << trap.observed << " " << trap.threshold << " " << trap.at << "\n";
    result.trap_log += os.str();
    (trap.firing ? result.fired_rules : result.resolved_rules)
        .insert(trap.rule);
    if (trap.trap_seq > result.max_trap_seq) {
      result.max_trap_seq = trap.trap_seq;
    }
  }
  result.traps_received = console.traps_received();
  result.sequence_gaps = console.sequence_gaps();
  if (const Metric* gaps = console_metrics.Find("trap.sequence_gaps")) {
    result.sequence_gaps_counter =
        static_cast<const Counter*>(gaps)->value();
  }
  for (const AlertTransition& transition : health->engine()->log()) {
    if (transition.firing) {
      result.engine_fired_rules.insert(transition.rule);
    }
  }
  result.postmortems_valid = !health->recorder()->postmortems().empty();
  for (const Postmortem& postmortem : health->recorder()->postmortems()) {
    result.postmortems += postmortem.json;
    result.postmortems_valid =
        result.postmortems_valid && CheckJsonSyntax(postmortem.json).ok();
  }
  result.chrome_trace = ChromeTraceJson(*system.tracer());
  result.chrome_trace_valid = CheckJsonSyntax(result.chrome_trace).ok();
  result.queue_drop_final =
      health->engine()->StateOf("lan.queue_drop_rate");
  result.sync_drift_final =
      health->engine()->StateOf("speaker.0.sync_drift");
  return result;
}

TEST(HealthEndToEndTest, BandwidthSqueezeFiresTrapsAndRecovers) {
  SqueezeRunResult run = RunBandwidthSqueezeScenario();

  // The squeeze starves the speaker (silence), skews playback (sync
  // drift), and overflows the transmit queue (queue drops): three distinct
  // SLO rules fire on the engine.
  EXPECT_GE(run.engine_fired_rules.size(), 3u) << run.trap_log;
  EXPECT_TRUE(run.engine_fired_rules.count("lan.queue_drop_rate"))
      << run.trap_log;
  EXPECT_TRUE(run.engine_fired_rules.count("speaker.0.sync_drift"))
      << run.trap_log;
  EXPECT_TRUE(run.engine_fired_rules.count("speaker.0.silence_rate"))
      << run.trap_log;
  // At least two of them complete the full fire -> trap-delivered ->
  // resolve cycle at the console.
  EXPECT_GE(run.fired_rules.size(), 2u) << run.trap_log;
  ASSERT_TRUE(run.fired_rules.count("speaker.0.sync_drift")) << run.trap_log;
  ASSERT_TRUE(run.fired_rules.count("speaker.0.silence_rate"))
      << run.trap_log;
  EXPECT_TRUE(run.resolved_rules.count("speaker.0.sync_drift"))
      << run.trap_log;
  EXPECT_TRUE(run.resolved_rules.count("speaker.0.silence_rate"))
      << run.trap_log;
  EXPECT_GE(run.traps_received, 4u);
  // The queue-drop FIRE trap is itself a casualty of the congestion it
  // reports — multicast onto the overflowing segment and tail-dropped. The
  // per-sender trap sequence makes the loss visible as a gap at the
  // console (its RESOLVE trap, sent on the healthy wire, does arrive).
  EXPECT_TRUE(run.resolved_rules.count("lan.queue_drop_rate"))
      << run.trap_log;
  EXPECT_GT(run.max_trap_seq, run.traps_received) << run.trap_log;
  // The console detects exactly those losses from the per-sender sequence
  // numbers: one gap per trap the wire swallowed, surfaced both through the
  // accessor and the trap.sequence_gaps counter.
  EXPECT_EQ(run.sequence_gaps, run.max_trap_seq - run.traps_received)
      << run.trap_log;
  EXPECT_GE(run.sequence_gaps, 1u) << run.trap_log;
  EXPECT_EQ(run.sequence_gaps_counter, run.sequence_gaps);
  // Ten seconds after the squeeze lifted, everything is quiet again.
  EXPECT_EQ(run.queue_drop_final, AlertState::kInactive) << run.trap_log;
  EXPECT_EQ(run.sync_drift_final, AlertState::kInactive) << run.trap_log;
  // The flight recorder captured the incident as parseable postmortems, and
  // the packet trace exports as a parseable Chrome trace.
  EXPECT_TRUE(run.postmortems_valid);
  EXPECT_NE(run.postmortems.find("lan.queue_drop_rate"), std::string::npos);
  EXPECT_TRUE(run.chrome_trace_valid);
  EXPECT_NE(run.chrome_trace.find("queue_drop"), std::string::npos);
}

TEST(HealthEndToEndTest, FaultScenarioIsBitIdenticalAcrossRuns) {
  SqueezeRunResult a = RunBandwidthSqueezeScenario();
  SqueezeRunResult b = RunBandwidthSqueezeScenario();
  EXPECT_EQ(a.trap_log, b.trap_log);
  EXPECT_EQ(StripExposition(a.postmortems), StripExposition(b.postmortems));
  EXPECT_EQ(a.chrome_trace, b.chrome_trace);
}

// Health monitoring over a 4-zone, 4-thread sharded system: the sampler
// ticks at epoch barriers (the TSan CI path for barrier-time gauge reads),
// the default runtime rules install, and postmortems stay valid JSON. A
// mid-run bandwidth squeeze drives the queue-drop rule through a real fire.
TEST(HealthEndToEndTest, ShardedMonitorTicksAtBarriers) {
  SystemOptions sys_options;
  sys_options.sharded.zones = 4;
  sys_options.sharded.threads = 4;
  sys_options.lan.tx_queue_limit = 64 * 1024;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  for (int i = 0; i < 4; ++i) {
    SpeakerOptions so;
    so.name = "es-" + std::to_string(i);
    so.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(so, channel->group);
  }
  EthernetSpeakerSystem::HealthRuleDefaults rules;
  rules.queue_drop_rate_per_sec = 1.0;
  HealthMonitor* health = system.EnableHealthMonitoring({}, rules);
  ASSERT_NE(health, nullptr);
  EXPECT_TRUE(health->running());
  ASSERT_NE(system.zone_collector(), nullptr);

  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(21), opts)
                  .ok());
  system.RunUntil(Seconds(2));
  system.lan()->set_bandwidth_bps(1e6);
  system.RunUntil(Seconds(4));
  system.lan()->set_bandwidth_bps(100e6);
  system.RunUntil(Seconds(6));

  // Barrier-driven ticks land exactly on the classic 100 ms grid.
  EXPECT_EQ(health->sampler()->ticks(), 60u);
  bool queue_drop_fired = false;
  for (const AlertTransition& transition : health->engine()->log()) {
    queue_drop_fired = queue_drop_fired ||
                       (transition.firing &&
                        transition.rule == "lan.queue_drop_rate");
  }
  EXPECT_TRUE(queue_drop_fired);
  // The default runtime self-telemetry rules are installed and evaluated.
  const std::string status = health->StatusText();
  EXPECT_NE(status.find("runtime.ring_spill_rate"), std::string::npos);
  EXPECT_NE(status.find("runtime.barrier_stall"), std::string::npos);
  ASSERT_FALSE(health->recorder()->postmortems().empty());
  for (const Postmortem& postmortem : health->recorder()->postmortems()) {
    EXPECT_TRUE(CheckJsonSyntax(postmortem.json).ok());
  }
}

TEST(HealthEndToEndTest, HealthySystemStaysQuiet) {
  // The default rules must not flap on a perfectly healthy run.
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  SpeakerOptions so;
  so.decode_speed_factor = 0.05;
  (void)*system.AddSpeaker(so, channel->group);
  HealthMonitor* health = system.EnableHealthMonitoring();
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(22), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(10));
  EXPECT_EQ(health->engine()->fired_total(), 0u)
      << health->StatusText();
  EXPECT_TRUE(health->recorder()->postmortems().empty());
  EXPECT_GT(health->sampler()->ticks(), 90u);
}

}  // namespace
}  // namespace espk
