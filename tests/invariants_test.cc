// Property-style invariant tests: conservation laws that must hold across
// the whole impairment/parameter space, checked with parameterized sweeps.
#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/kernel/vad.h"
#include "src/rebroadcast/player_app.h"

namespace espk {
namespace {

// ------------------------------------------- LAN accounting conservation --

struct LanCase {
  double loss;
  SimDuration jitter;
  double bandwidth_bps;
};

class LanConservation : public ::testing::TestWithParam<LanCase> {};

TEST_P(LanConservation, PacketAccountingBalances) {
  const LanCase& tc = GetParam();
  Simulation sim;
  SegmentConfig config;
  config.loss_probability = tc.loss;
  config.jitter = tc.jitter;
  config.bandwidth_bps = tc.bandwidth_bps;
  config.tx_queue_limit = 32 * 1024;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto r1 = segment.CreateNic();
  auto r2 = segment.CreateNic();
  ASSERT_TRUE(r1->JoinGroup(5).ok());
  ASSERT_TRUE(r2->JoinGroup(5).ok());
  Prng prng(1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(sender->SendMulticast(5, Bytes(prng.NextBelow(1400) + 1)).ok());
    if (i % 16 == 0) {
      sim.RunFor(Milliseconds(5));
    }
  }
  sim.Run();

  const SegmentStats& stats = segment.stats();
  // Everything offered was either sent or queue-dropped.
  EXPECT_EQ(stats.packets_offered,
            stats.packets_sent + stats.packets_dropped_queue);
  // Each sent multicast packet produced one delivery attempt per member.
  EXPECT_EQ(stats.deliveries, stats.packets_sent * 2);
  // Delivery attempts were either lost or received.
  EXPECT_EQ(stats.deliveries - stats.deliveries_lost,
            r1->packets_received() + r2->packets_received());
}

INSTANTIATE_TEST_SUITE_P(
    ImpairmentMatrix, LanConservation,
    ::testing::Values(LanCase{0.0, 0, 100e6},
                      LanCase{0.1, 0, 100e6},
                      LanCase{0.0, Milliseconds(10), 100e6},
                      LanCase{0.3, Milliseconds(5), 10e6},
                      LanCase{0.05, Milliseconds(2), 1e6}));

// --------------------------------------- VAD byte conservation invariant --

class VadConservation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(VadConservation, BytesInEqualsBytesOutPlusBuffered) {
  auto [ring_kb, chunk_frames] = GetParam();
  Simulation sim;
  SimKernel kernel(&sim);
  VadOptions options;
  options.slave_ring_capacity = static_cast<size_t>(ring_kb) * 1024;
  auto vad = *CreateVadPair(&kernel, 0, options);
  uint64_t sink_bytes = 0;
  vad.lld->set_kernel_sink(
      [&](const Bytes& block, const AudioConfig&) { sink_bytes += block.size(); });

  AudioConfig config{8000, 1, AudioEncoding::kLinearS16};
  PlayerAppOptions opts;
  opts.config = config;
  opts.chunk_frames = chunk_frames;
  opts.total_frames = 8000 * 2;
  PlayerApp player(&kernel, 10, "/dev/vads0",
                   std::make_unique<SineGenerator>(440.0), opts);
  ASSERT_TRUE(player.Start().ok());
  sim.RunUntil(Seconds(10));

  // Conservation through the kernel: everything the app wrote is either in
  // the slave ring or was pumped to the sink. No bytes invented or lost.
  EXPECT_EQ(vad.slave->bytes_written(),
            sink_bytes + vad.slave->buffered());
  EXPECT_EQ(vad.slave->bytes_written(),
            static_cast<uint64_t>(player.frames_written()) * 2u);
  EXPECT_EQ(vad.slave->silence_bytes_inserted(), 0u);  // Pseudo: no silence.
}

INSTANTIATE_TEST_SUITE_P(RingAndChunkSizes, VadConservation,
                         ::testing::Combine(::testing::Values(4, 16, 64),
                                            ::testing::Values(100, 800,
                                                              4000)));

// ------------------------------------ pipeline end-to-end frame counting --

class PipelineConservation : public ::testing::TestWithParam<double> {};

TEST_P(PipelineConservation, SentEqualsPlayedPlusDroppedUnderLoss) {
  double loss = GetParam();
  SystemOptions sys;
  sys.lan.loss_probability = loss;
  EthernetSpeakerSystem system(sys);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  rb.packet_frames = 800;  // 10 packets/s: enough samples for the rate check.
  Channel* channel = *system.CreateChannel("music", rb);
  SpeakerOptions so;
  so.decode_speed_factor = 0.05;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  opts.total_frames = 8000 * 10;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            opts);
  system.sim()->RunUntil(Seconds(20));

  const RebroadcasterStats& sent = channel->rebroadcaster->stats();
  const SpeakerStats& recv = speaker->stats();
  // Every data packet the producer sent was received or lost in the
  // network; every received one was played or dropped for a counted
  // reason. (No jitter, so nothing is late; buffers are ample.)
  uint64_t network_lost = sent.data_packets - recv.data_packets;
  EXPECT_EQ(recv.data_packets,
            recv.chunks_played + recv.waiting_drops + recv.late_drops +
                recv.overflow_drops + recv.duplicate_drops);
  if (loss == 0.0) {
    EXPECT_EQ(network_lost, 0u);
  } else {
    double loss_rate = static_cast<double>(network_lost) /
                       static_cast<double>(sent.data_packets);
    EXPECT_NEAR(loss_rate, loss, 0.12);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, PipelineConservation,
                         ::testing::Values(0.0, 0.02, 0.1, 0.25));

// ----------------------------------------------- recorder gap accounting --

TEST(InvariantTest, RebroadcasterSequenceNumbersAreDense) {
  // Sequence numbers must be consecutive on the wire — the speaker's
  // duplicate/gap logic and the recorder's silence fill both rely on it.
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  auto listener = system.lan()->CreateNic();
  ASSERT_TRUE(listener->JoinGroup(channel->group).ok());
  std::vector<uint32_t> seqs;
  listener->SetReceiveHandler([&](const Datagram& d) {
    Result<ParsedPacket> parsed = ParsePacket(d.payload);
    if (parsed.ok()) {
      if (const auto* data = std::get_if<DataPacket>(&parsed->packet)) {
        seqs.push_back(data->seq);
      }
    }
  });
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            opts);
  system.sim()->RunUntil(Seconds(10));
  ASSERT_GT(seqs.size(), 10u);
  for (size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<uint32_t>(i));
  }
}

TEST(InvariantTest, DataDeadlinesAdvanceByExactlyTheAudioDuration) {
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  rb.packet_frames = 4096;
  Channel* channel = *system.CreateChannel("music", rb);
  auto listener = system.lan()->CreateNic();
  ASSERT_TRUE(listener->JoinGroup(channel->group).ok());
  std::vector<SimTime> deadlines;
  listener->SetReceiveHandler([&](const Datagram& d) {
    Result<ParsedPacket> parsed = ParsePacket(d.payload);
    if (parsed.ok()) {
      if (const auto* data = std::get_if<DataPacket>(&parsed->packet)) {
        deadlines.push_back(data->play_deadline);
      }
    }
  });
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  (void)*system.StartPlayer(channel, std::make_unique<MusicLikeGenerator>(1),
                            opts);
  system.sim()->RunUntil(Seconds(5));
  ASSERT_GT(deadlines.size(), 10u);
  SimDuration expected = FramesToDuration(4096, 44100);
  for (size_t i = 1; i < deadlines.size(); ++i) {
    EXPECT_EQ(deadlines[i] - deadlines[i - 1], expected) << "packet " << i;
  }
}

}  // namespace
}  // namespace espk
