#include <gtest/gtest.h>

#include <functional>

#include "src/audio/analysis.h"
#include "src/audio/generator.h"
#include "src/audio/sample_convert.h"
#include "src/kernel/hw_audio.h"
#include "src/kernel/kernel.h"
#include "src/kernel/vad.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

constexpr Pid kAppPid = 100;
constexpr Pid kRebroadcasterPid = 101;

Bytes SerializeConfig(const AudioConfig& config) {
  ByteWriter w;
  config.Serialize(&w);
  return w.TakeBytes();
}

// Drives an "audio application": opens a device, configures it, then keeps
// writing generator output in fixed chunks as fast as the kernel accepts
// them (write blocks when the ring is full — like a real player).
class TestPlayerApp {
 public:
  TestPlayerApp(SimKernel* kernel, std::string path, AudioConfig config,
                std::unique_ptr<SignalGenerator> gen, size_t chunk_frames)
      : kernel_(kernel),
        path_(std::move(path)),
        config_(config),
        gen_(std::move(gen)),
        chunk_frames_(chunk_frames) {}

  Status Start(Pid pid) {
    pid_ = pid;
    Result<int> fd = kernel_->Open(pid_, path_);
    if (!fd.ok()) {
      return fd.status();
    }
    fd_ = *fd;
    Bytes cfg = SerializeConfig(config_);
    ESPK_RETURN_IF_ERROR(
        kernel_->Ioctl(pid_, fd_, IoctlCmd::kAudioSetInfo, &cfg));
    running_ = true;
    WriteNext();
    return OkStatus();
  }

  void Stop() { running_ = false; }

  // Total frames of audio handed to the kernel.
  int64_t frames_written() const { return frames_written_; }
  int fd() const { return fd_; }
  int64_t completed_writes() const { return completed_writes_; }

 private:
  void WriteNext() {
    if (!running_) {
      return;
    }
    Bytes chunk = gen_->GenerateBytes(static_cast<int64_t>(chunk_frames_),
                                      config_);
    kernel_->Write(pid_, fd_, chunk, [this](Result<size_t> n) {
      if (!n.ok() || !running_) {
        return;
      }
      frames_written_ += static_cast<int64_t>(chunk_frames_);
      ++completed_writes_;
      WriteNext();
    });
  }

  SimKernel* kernel_;
  std::string path_;
  AudioConfig config_;
  std::unique_ptr<SignalGenerator> gen_;
  size_t chunk_frames_;
  Pid pid_ = 0;
  int fd_ = -1;
  bool running_ = false;
  int64_t frames_written_ = 0;
  int64_t completed_writes_ = 0;
};

// ---------------------------------------------------------- Syscalls --

TEST(KernelTest, OpenUnknownDeviceFails) {
  Simulation sim;
  SimKernel kernel(&sim);
  EXPECT_FALSE(kernel.Open(kAppPid, "/dev/nonexistent").ok());
}

TEST(KernelTest, AccountingLandsInInjectedRegistry) {
  Simulation sim;
  MetricsRegistry metrics(&sim);
  SimKernel kernel(&sim, &metrics);
  EXPECT_EQ(kernel.metrics(), &metrics);
  // A failed open is still a syscall.
  EXPECT_FALSE(kernel.Open(kAppPid, "/dev/nonexistent").ok());
  kernel.CountInterrupt();
  kernel.CountSilence(128);
  const auto* syscalls =
      static_cast<const Counter*>(metrics.Find("kernel.syscalls"));
  ASSERT_NE(syscalls, nullptr);
  EXPECT_EQ(syscalls->value(), 1u);
  KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.syscalls, 1u);
  EXPECT_EQ(stats.interrupts, 1u);
  EXPECT_EQ(stats.silence_insertions, 128u);
}

TEST(KernelTest, ContextSwitchesAreDerivedFromStructuralEvents) {
  Simulation sim;
  SimKernel kernel(&sim);  // No registry injected: kernel owns a private one.
  ASSERT_NE(kernel.metrics(), nullptr);
  kernel.CountBlock();
  kernel.CountBlock();
  kernel.CountWakeup();
  kernel.CountKthreadActivation();
  KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.process_blocks, 2u);
  EXPECT_EQ(stats.process_wakeups, 1u);
  EXPECT_EQ(stats.kthread_activations, 1u);
  // blocks + wakeups + 2 per kthread activation; nothing double-counted.
  EXPECT_EQ(stats.context_switches, 2u + 1u + 2u);
  // The derived total is also published as a gauge.
  const auto* gauge = static_cast<const Gauge*>(
      kernel.metrics()->Find("kernel.context_switches"));
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->Value(), 5.0);
}

TEST(KernelTest, BadFdFailsEverySyscall) {
  Simulation sim;
  SimKernel kernel(&sim);
  EXPECT_FALSE(kernel.Close(kAppPid, 42).ok());
  bool write_failed = false;
  kernel.Write(kAppPid, 42, {1, 2, 3},
               [&](Result<size_t> r) { write_failed = !r.ok(); });
  EXPECT_TRUE(write_failed);
  bool read_failed = false;
  kernel.Read(kAppPid, 42, 16, [&](Result<Bytes> r) { read_failed = !r.ok(); });
  EXPECT_TRUE(read_failed);
  Bytes buf;
  EXPECT_FALSE(kernel.Ioctl(kAppPid, 42, IoctlCmd::kAudioGetInfo, &buf).ok());
}

TEST(KernelTest, AudioDeviceIsExclusiveOpen) {
  Simulation sim;
  SimKernel kernel(&sim);
  ASSERT_TRUE(CreateHwAudioDevice(&kernel, 0).ok());
  Result<int> fd1 = kernel.Open(kAppPid, "/dev/audio0");
  ASSERT_TRUE(fd1.ok());
  EXPECT_FALSE(kernel.Open(kRebroadcasterPid, "/dev/audio0").ok());
  ASSERT_TRUE(kernel.Close(kAppPid, *fd1).ok());
  EXPECT_TRUE(kernel.Open(kRebroadcasterPid, "/dev/audio0").ok());
}

TEST(KernelTest, SetInfoGetInfoRoundTrip) {
  Simulation sim;
  SimKernel kernel(&sim);
  ASSERT_TRUE(CreateHwAudioDevice(&kernel, 0).ok());
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  AudioConfig cd = AudioConfig::CdQuality();
  Bytes buf = SerializeConfig(cd);
  ASSERT_TRUE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetInfo, &buf).ok());
  Bytes out;
  ASSERT_TRUE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioGetInfo, &out).ok());
  ByteReader r(out);
  EXPECT_EQ(*AudioConfig::Deserialize(&r), cd);
}

TEST(KernelTest, SetInfoRejectsGarbage) {
  Simulation sim;
  SimKernel kernel(&sim);
  ASSERT_TRUE(CreateHwAudioDevice(&kernel, 0).ok());
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  Bytes garbage = {1, 2};
  EXPECT_FALSE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetInfo, &garbage).ok());
}

TEST(KernelTest, IoctlFromNonOwnerDenied) {
  Simulation sim;
  SimKernel kernel(&sim);
  ASSERT_TRUE(CreateHwAudioDevice(&kernel, 0).ok());
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  // Another pid using the same fd number is rejected at the fd table.
  Bytes buf;
  EXPECT_FALSE(
      kernel.Ioctl(kRebroadcasterPid, fd, IoctlCmd::kAudioGetInfo, &buf).ok());
}

// ---------------------------------------------- Hardware rate limiting --

TEST(HwAudioTest, PlaybackIsRateLimitedToRealTime) {
  // §3.1: five seconds of audio through a real device takes five seconds.
  Simulation sim;
  SimKernel kernel(&sim);
  auto hw = *CreateHwAudioDevice(&kernel, 0, /*ring_capacity=*/16384);
  CapturePlaybackSink sink;
  hw.lld->set_sink(&sink);

  AudioConfig cfg = AudioConfig::PhoneQuality();  // 8000 B/s.
  TestPlayerApp app(&kernel, "/dev/audio0", cfg,
                    std::make_unique<SineGenerator>(440.0), 800);
  ASSERT_TRUE(app.Start(kAppPid).ok());

  sim.RunUntil(Seconds(5));
  app.Stop();
  // In 5 seconds the app can only have pushed ~5 seconds of audio (plus the
  // ring buffer depth of ~2 s at 8 kB), not megabytes.
  int64_t max_frames = 5 * 8000 + 16384 + 1600;
  EXPECT_LE(app.frames_written(), max_frames);
  EXPECT_GE(app.frames_written(), 5 * 8000 - 1600);
  // The sink heard ~5 seconds of samples.
  EXPECT_NEAR(static_cast<double>(sink.samples().size()), 5.0 * 8000.0,
              8000.0 * 0.3);
}

TEST(HwAudioTest, PlayedAudioMatchesWrittenAudio) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto hw = *CreateHwAudioDevice(&kernel, 0);
  CapturePlaybackSink sink;
  hw.lld->set_sink(&sink);

  AudioConfig cfg{8000, 1, AudioEncoding::kLinearS16};
  TestPlayerApp app(&kernel, "/dev/audio0", cfg,
                    std::make_unique<SineGenerator>(440.0), 400);
  ASSERT_TRUE(app.Start(kAppPid).ok());
  sim.RunUntil(Seconds(2));
  app.Stop();

  // Compare the sink's first second against a reference 440 Hz tone.
  SineGenerator ref_gen(440.0);
  std::vector<float> reference;
  ref_gen.Generate(8000, 1, 8000, &reference);
  std::vector<float> played(sink.samples().begin(),
                            sink.samples().begin() + 8000);
  EXPECT_GT(SnrDb(reference, played), 35.0);  // s16 quantization only.
}

TEST(HwAudioTest, UnderrunInsertsSilence) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto hw = *CreateHwAudioDevice(&kernel, 0);
  CapturePlaybackSink sink;
  hw.lld->set_sink(&sink);

  AudioConfig cfg = AudioConfig::PhoneQuality();
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());
  // Write only 100 ms of audio, then let the hardware run for 1 s.
  SineGenerator gen(440.0);
  Bytes chunk = gen.GenerateBytes(800, cfg);
  bool wrote = false;
  kernel.Write(kAppPid, fd, chunk, [&](Result<size_t> r) {
    wrote = r.ok();
  });
  sim.RunUntil(Seconds(1));
  EXPECT_TRUE(wrote);
  EXPECT_GT(hw.hld->silence_bytes_inserted(), 0u);
  EXPECT_GT(kernel.stats().silence_insertions, 0u);
}

TEST(HwAudioTest, DrainCompletesWhenRingEmpties) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto hw = *CreateHwAudioDevice(&kernel, 0);
  AudioConfig cfg = AudioConfig::PhoneQuality();
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());
  SineGenerator gen(440.0);
  Bytes chunk = gen.GenerateBytes(4000, cfg);  // 500 ms.
  kernel.Write(kAppPid, fd, chunk, [](Result<size_t>) {});
  SimTime drained_at = -1;
  kernel.Drain(kAppPid, fd, [&](Status s) {
    ASSERT_TRUE(s.ok());
    drained_at = sim.now();
  });
  sim.RunUntil(Seconds(2));
  // Drain completes around the 500 ms mark (plus block granularity).
  EXPECT_GE(drained_at, Milliseconds(400));
  EXPECT_LE(drained_at, Milliseconds(700));
}

TEST(HwAudioTest, BlockSizeIoctlControlsInterruptRate) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto hw = *CreateHwAudioDevice(&kernel, 0, 65536);
  AudioConfig cfg = AudioConfig::PhoneQuality();
  int fd = *kernel.Open(kAppPid, "/dev/audio0");
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());
  ByteWriter bs;
  bs.WriteU32(400);  // 50 ms blocks at 8000 B/s.
  Bytes bs_buf = bs.TakeBytes();
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, fd, IoctlCmd::kAudioSetBlockSize, &bs_buf).ok());

  TestPlayerApp app(&kernel, "/dev/audio0", cfg,
                    std::make_unique<SineGenerator>(440.0), 400);
  // Re-open via the already-open fd is not needed; write directly.
  SineGenerator gen(440.0);
  std::function<void()> pump = [&] {
    Bytes chunk = gen.GenerateBytes(400, cfg);
    kernel.Write(kAppPid, fd, chunk, [&](Result<size_t> r) {
      if (r.ok()) {
        pump();
      }
    });
  };
  pump();
  uint64_t before = kernel.stats().interrupts;
  sim.RunUntil(Seconds(2));
  uint64_t per_second = (kernel.stats().interrupts - before) / 2;
  EXPECT_NEAR(static_cast<double>(per_second), 20.0, 3.0);  // 1/50ms.
}

// ------------------------------------------------------------- The VAD --

TEST(VadTest, ConfigChangePropagatesToMaster) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);

  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");

  AudioConfig cd = AudioConfig::CdQuality();
  Bytes cfg = SerializeConfig(cd);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg).ok());

  Result<VadRecord> got = DataLossError("no read yet");
  kernel.Read(kRebroadcasterPid, master_fd, 1 << 20, [&](Result<Bytes> frame) {
    ASSERT_TRUE(frame.ok());
    got = VadRecord::Deserialize(*frame);
  });
  sim.Run();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, VadRecord::Type::kConfig);
  EXPECT_EQ(got->config, cd);
}

TEST(VadTest, AudioFlowsFromSlaveToMaster) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);

  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
  AudioConfig cfg{8000, 1, AudioEncoding::kLinearS16};
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());

  SineGenerator gen(440.0);
  Bytes written = gen.GenerateBytes(4000, cfg);
  kernel.Write(kAppPid, slave_fd, written, [](Result<size_t>) {});

  // Read records until we have all the audio back.
  Bytes received;
  std::function<void()> read_next = [&] {
    kernel.Read(kRebroadcasterPid, master_fd, 1 << 20,
                [&](Result<Bytes> frame) {
                  if (!frame.ok()) {
                    return;
                  }
                  Result<VadRecord> rec = VadRecord::Deserialize(*frame);
                  ASSERT_TRUE(rec.ok());
                  if (rec->type == VadRecord::Type::kAudio) {
                    received.insert(received.end(), rec->audio.begin(),
                                    rec->audio.end());
                  }
                  if (received.size() < written.size()) {
                    read_next();
                  }
                });
  };
  read_next();
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(received, written);  // Byte-exact passthrough.
}

TEST(VadTest, NoRateLimitingThroughTheVad) {
  // §3.1: a "five minute song" drains through the VAD at pump speed, far
  // faster than real time, when the consumer keeps up.
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
  AudioConfig cd = AudioConfig::CdQuality();
  Bytes cfg_buf = SerializeConfig(cd);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());

  // 30 seconds of CD audio = ~5.3 MB.
  const int64_t total_frames = 30 * 44100;
  SineGenerator gen(440.0);
  int64_t frames_left = total_frames;
  std::function<void()> write_next = [&] {
    if (frames_left <= 0) {
      return;
    }
    int64_t n = std::min<int64_t>(frames_left, 4410);
    frames_left -= n;
    kernel.Write(kAppPid, slave_fd, gen.GenerateBytes(n, cd),
                 [&](Result<size_t> r) {
                   if (r.ok()) {
                     write_next();
                   }
                 });
  };
  write_next();

  uint64_t received_bytes = 0;
  std::function<void()> read_next = [&] {
    kernel.Read(kRebroadcasterPid, master_fd, 1 << 20,
                [&](Result<Bytes> frame) {
                  if (!frame.ok()) {
                    return;
                  }
                  Result<VadRecord> rec = VadRecord::Deserialize(*frame);
                  if (rec.ok() && rec->type == VadRecord::Type::kAudio) {
                    received_bytes += rec->audio.size();
                  }
                  read_next();
                });
  };
  read_next();

  sim.RunUntil(Seconds(5));  // Far less than the 30 s of audio content.
  EXPECT_EQ(received_bytes,
            static_cast<uint64_t>(total_frames) * 4u);
}

TEST(VadTest, MasterBackpressureBlocksWriter) {
  // If the rebroadcaster never reads, the master queue fills, then the
  // slave ring fills, then the writer blocks — bounded memory end to end.
  Simulation sim;
  SimKernel kernel(&sim);
  VadOptions options;
  options.master_capacity = 32768;
  options.slave_ring_capacity = 16384;
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0, options);
  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  AudioConfig cd = AudioConfig::CdQuality();
  Bytes cfg_buf = SerializeConfig(cd);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());

  SineGenerator gen(440.0);
  uint64_t bytes_accepted = 0;
  bool writer_blocked = true;
  std::function<void()> write_next = [&] {
    Bytes chunk = gen.GenerateBytes(4410, cd);
    kernel.Write(kAppPid, slave_fd, chunk, [&](Result<size_t> r) {
      if (r.ok()) {
        bytes_accepted += *r;
        write_next();
      } else {
        writer_blocked = false;
      }
    });
  };
  write_next();
  sim.RunUntil(Seconds(10));
  // Accepted bytes bounded by ring + master capacity (+ one chunk slack).
  EXPECT_LE(bytes_accepted, 16384u + 32768u + 4u * 4410u + 4096u);
  EXPECT_TRUE(writer_blocked);  // Still parked, not failed.
}

TEST(VadTest, NoPumpPolicyStalls) {
  // The §3.3 trap itself: without the kernel thread (or HLD modification)
  // the first TriggerOutput is the only invocation and playback stalls.
  Simulation sim;
  SimKernel kernel(&sim);
  VadOptions options;
  options.policy = VadPumpPolicy::kNone;
  options.slave_ring_capacity = 8192;
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0, options);
  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  AudioConfig cfg{8000, 1, AudioEncoding::kLinearS16};
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());

  SineGenerator gen(440.0);
  uint64_t bytes_accepted = 0;
  std::function<void()> write_next = [&] {
    kernel.Write(kAppPid, slave_fd, gen.GenerateBytes(800, cfg),
                 [&](Result<size_t> r) {
                   if (r.ok()) {
                     bytes_accepted += *r;
                     write_next();
                   }
                 });
  };
  write_next();
  sim.RunUntil(Seconds(60));
  // Only the ring buffer's worth was ever accepted; nothing was pumped.
  EXPECT_LE(bytes_accepted, 8192u + 1600u);
  EXPECT_EQ(vad.lld->blocks_pumped(), 0u);
}

TEST(VadTest, ModifiedHldPolicyAlsoWorks) {
  Simulation sim;
  SimKernel kernel(&sim);
  VadOptions options;
  options.policy = VadPumpPolicy::kModifiedHld;
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0, options);
  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
  AudioConfig cfg{8000, 1, AudioEncoding::kLinearS16};
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());

  SineGenerator gen(440.0);
  Bytes written = gen.GenerateBytes(8000, cfg);
  kernel.Write(kAppPid, slave_fd, written, [](Result<size_t>) {});

  Bytes received;
  std::function<void()> read_next = [&] {
    kernel.Read(kRebroadcasterPid, master_fd, 1 << 20,
                [&](Result<Bytes> frame) {
                  if (!frame.ok()) {
                    return;
                  }
                  Result<VadRecord> rec = VadRecord::Deserialize(*frame);
                  if (rec.ok() && rec->type == VadRecord::Type::kAudio) {
                    received.insert(received.end(), rec->audio.begin(),
                                    rec->audio.end());
                  }
                  read_next();
                });
  };
  read_next();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(received, written);
  // No kernel-thread activations in this mode — pump runs off softclock.
  EXPECT_EQ(kernel.stats().kthread_activations, 0u);
  EXPECT_GT(kernel.stats().interrupts, 0u);
}

TEST(VadTest, KernelSinkBypassesMaster) {
  // Figure 5's "kernel threaded VAD" configuration: streaming stays in the
  // kernel; the master queue is never touched.
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  uint64_t sink_bytes = 0;
  vad.lld->set_kernel_sink(
      [&](const Bytes& block, const AudioConfig&) { sink_bytes += block.size(); });

  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  AudioConfig cfg{8000, 1, AudioEncoding::kLinearS16};
  Bytes cfg_buf = SerializeConfig(cfg);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());
  SineGenerator gen(440.0);
  kernel.Write(kAppPid, slave_fd, gen.GenerateBytes(8000, cfg),
               [](Result<size_t>) {});
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(sink_bytes, 16000u);
  EXPECT_EQ(vad.master->queued_records(), 0u);
  EXPECT_GT(kernel.stats().kthread_activations, 0u);
}

TEST(VadTest, RecordSerializationRoundTrip) {
  VadRecord audio_rec;
  audio_rec.type = VadRecord::Type::kAudio;
  audio_rec.audio = {1, 2, 3, 4, 5};
  Result<VadRecord> back = VadRecord::Deserialize(audio_rec.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, VadRecord::Type::kAudio);
  EXPECT_EQ(back->audio, audio_rec.audio);

  VadRecord config_rec;
  config_rec.type = VadRecord::Type::kConfig;
  config_rec.config = AudioConfig::CdQuality();
  back = VadRecord::Deserialize(config_rec.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->type, VadRecord::Type::kConfig);
  EXPECT_EQ(back->config, AudioConfig::CdQuality());
}

TEST(VadTest, RecordDeserializeRejectsGarbage) {
  EXPECT_FALSE(VadRecord::Deserialize({}).ok());
  EXPECT_FALSE(VadRecord::Deserialize({99}).ok());
  EXPECT_FALSE(VadRecord::Deserialize({1, 255, 255, 255, 255}).ok());
}

TEST(VadTest, MasterIsReadOnly) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
  bool failed = false;
  kernel.Write(kRebroadcasterPid, master_fd, {1, 2, 3},
               [&](Result<size_t> r) { failed = !r.ok(); });
  EXPECT_TRUE(failed);
}

TEST(VadTest, MasterGetInfoReflectsSlaveConfig) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
  int master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
  Bytes out;
  // No configuration yet.
  EXPECT_FALSE(
      kernel.Ioctl(kRebroadcasterPid, master_fd, IoctlCmd::kAudioGetInfo, &out)
          .ok());
  AudioConfig cd = AudioConfig::CdQuality();
  Bytes cfg_buf = SerializeConfig(cd);
  ASSERT_TRUE(
      kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf).ok());
  ASSERT_TRUE(
      kernel.Ioctl(kRebroadcasterPid, master_fd, IoctlCmd::kAudioGetInfo, &out)
          .ok());
  ByteReader r(out);
  EXPECT_EQ(*AudioConfig::Deserialize(&r), cd);
}

// ------------------------------------------------------ Vmstat & daemons --

TEST(VmstatTest, BackgroundDaemonsMatchConfiguredRate) {
  Simulation sim;
  SimKernel kernel(&sim);
  kernel.StartBackgroundDaemons(4.2, /*seed=*/7);
  VmstatSampler vmstat(&kernel, Seconds(1));
  vmstat.Start();
  sim.RunUntil(Seconds(120));
  EXPECT_NEAR(vmstat.MeanPerInterval(), 4.2, 0.8);
  EXPECT_EQ(vmstat.samples().size(), 120u);
}

TEST(VmstatTest, StopFreezesSampling) {
  Simulation sim;
  SimKernel kernel(&sim);
  kernel.StartBackgroundDaemons(10.0);
  VmstatSampler vmstat(&kernel, Seconds(1));
  vmstat.Start();
  sim.RunUntil(Seconds(10));
  vmstat.Stop();
  kernel.StopBackgroundDaemons();
  sim.RunUntil(Seconds(20));
  EXPECT_EQ(vmstat.samples().size(), 10u);
}

TEST(VmstatTest, UserLevelStreamingSwitchesMoreThanKernelSink) {
  // The Figure 5 ordering: user-level streaming costs more context switches
  // than the in-kernel path, which costs more than an unloaded machine.
  auto run_config = [](bool user_level) {
    Simulation sim;
    SimKernel kernel(&sim);
    kernel.StartBackgroundDaemons(4.2, 7);
    auto vad = *CreateVadPair(&kernel, 0);
    if (!user_level) {
      vad.lld->set_kernel_sink([](const Bytes&, const AudioConfig&) {});
    }
    int slave_fd = *kernel.Open(kAppPid, "/dev/vads0");
    AudioConfig cd = AudioConfig::CdQuality();
    ByteWriter w;
    cd.Serialize(&w);
    Bytes cfg_buf = w.TakeBytes();
    EXPECT_TRUE(
        kernel.Ioctl(kAppPid, slave_fd, IoctlCmd::kAudioSetInfo, &cfg_buf)
            .ok());
    SineGenerator gen(440.0);
    // Writer paced at real time (the source is a live stream).
    PeriodicTask writer(&sim, Milliseconds(100), [&](SimTime) {
      kernel.Write(kAppPid, slave_fd, gen.GenerateBytes(4410, cd),
                   [](Result<size_t>) {});
    });
    writer.Start();
    std::function<void()> read_next;
    int master_fd = -1;
    if (user_level) {
      master_fd = *kernel.Open(kRebroadcasterPid, "/dev/vadm0");
      read_next = [&] {
        kernel.Read(kRebroadcasterPid, master_fd, 1 << 20,
                    [&](Result<Bytes>) { read_next(); });
      };
      read_next();
    }
    VmstatSampler vmstat(&kernel, Seconds(1));
    vmstat.Start();
    sim.RunUntil(Seconds(60));
    writer.Stop();
    return vmstat.MeanPerInterval();
  };

  double kernel_mean = run_config(false);
  double user_mean = run_config(true);
  EXPECT_GT(kernel_mean, 4.2 * 2);       // Streaming is visible.
  EXPECT_GT(user_mean, kernel_mean);     // User level costs more (Fig 5).
}

}  // namespace
}  // namespace espk
