#include <gtest/gtest.h>

#include "src/lan/segment.h"
#include "src/lan/udp_transport.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

TEST(SegmentTest, MulticastReachesOnlyJoinedNics) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto sender = segment.CreateNic();
  auto member = segment.CreateNic();
  auto outsider = segment.CreateNic();

  ASSERT_TRUE(member->JoinGroup(42).ok());
  int member_got = 0;
  int outsider_got = 0;
  member->SetReceiveHandler([&](const Datagram&) { ++member_got; });
  outsider->SetReceiveHandler([&](const Datagram&) { ++outsider_got; });

  ASSERT_TRUE(sender->SendMulticast(42, {1, 2, 3}).ok());
  sim.Run();
  EXPECT_EQ(member_got, 1);
  EXPECT_EQ(outsider_got, 0);
}

TEST(SegmentTest, SenderDoesNotHearItsOwnMulticast) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto sender = segment.CreateNic();
  ASSERT_TRUE(sender->JoinGroup(7).ok());
  int got = 0;
  sender->SetReceiveHandler([&](const Datagram&) { ++got; });
  ASSERT_TRUE(sender->SendMulticast(7, {1}).ok());
  sim.Run();
  EXPECT_EQ(got, 0);
}

TEST(SegmentTest, LeaveGroupStopsDelivery) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto sender = segment.CreateNic();
  auto member = segment.CreateNic();
  ASSERT_TRUE(member->JoinGroup(42).ok());
  int got = 0;
  member->SetReceiveHandler([&](const Datagram&) { ++got; });
  ASSERT_TRUE(sender->SendMulticast(42, {1}).ok());
  sim.Run();
  ASSERT_TRUE(member->LeaveGroup(42).ok());
  ASSERT_TRUE(sender->SendMulticast(42, {2}).ok());
  sim.Run();
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(member->LeaveGroup(42).ok());  // Already left.
}

TEST(SegmentTest, MembershipChurnMidStream) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto sender = segment.CreateNic();
  auto member = segment.CreateNic();
  int got = 0;
  member->SetReceiveHandler([&](const Datagram&) { ++got; });

  ASSERT_TRUE(member->JoinGroup(42).ok());
  EXPECT_EQ(segment.GroupMemberCount(42), 1u);
  ASSERT_TRUE(sender->SendMulticast(42, {1}).ok());
  sim.Run();
  EXPECT_EQ(got, 1);

  ASSERT_TRUE(member->LeaveGroup(42).ok());
  EXPECT_EQ(segment.GroupMemberCount(42), 0u);
  ASSERT_TRUE(sender->SendMulticast(42, {2}).ok());
  sim.Run();
  EXPECT_EQ(got, 1);  // Missed while out.

  ASSERT_TRUE(member->JoinGroup(42).ok());  // Re-join mid-stream.
  EXPECT_EQ(segment.GroupMemberCount(42), 1u);
  ASSERT_TRUE(sender->SendMulticast(42, {3}).ok());
  sim.Run();
  EXPECT_EQ(got, 2);
}

TEST(SegmentTest, DoubleJoinIsIdempotent) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto nic = segment.CreateNic();
  ASSERT_TRUE(nic->JoinGroup(9).ok());
  ASSERT_TRUE(nic->JoinGroup(9).ok());
  EXPECT_EQ(segment.GroupMemberCount(9), 1u);
  ASSERT_TRUE(nic->LeaveGroup(9).ok());
  EXPECT_EQ(segment.GroupMemberCount(9), 0u);
  EXPECT_FALSE(nic->LeaveGroup(9).ok());
}

TEST(SegmentTest, JoinLatencyDefersMembership) {
  Simulation sim;
  SegmentConfig config;
  config.join_latency = Milliseconds(5);
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto member = segment.CreateNic();
  int got = 0;
  member->SetReceiveHandler([&](const Datagram&) { ++got; });

  // A join takes effect join_latency later; traffic sent before that fans
  // out past the not-yet-member.
  ASSERT_TRUE(member->JoinGroup(42).ok());
  EXPECT_FALSE(member->IsJoined(42));
  ASSERT_TRUE(sender->SendMulticast(42, {1}).ok());
  sim.RunUntil(Milliseconds(10));
  EXPECT_TRUE(member->IsJoined(42));
  EXPECT_EQ(got, 0);
  ASSERT_TRUE(sender->SendMulticast(42, {2}).ok());
  sim.RunUntil(Milliseconds(20));
  EXPECT_EQ(got, 1);

  // Leaving is deferred the same way: the NIC keeps hearing the group until
  // the latency elapses.
  ASSERT_TRUE(member->LeaveGroup(42).ok());
  EXPECT_TRUE(member->IsJoined(42));
  ASSERT_TRUE(sender->SendMulticast(42, {3}).ok());
  sim.RunUntil(Milliseconds(30));
  EXPECT_FALSE(member->IsJoined(42));
  EXPECT_EQ(got, 2);
  ASSERT_TRUE(sender->SendMulticast(42, {4}).ok());
  sim.Run();
  EXPECT_EQ(got, 2);
}

TEST(SegmentTest, UnicastReachesOnlyDestination) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto a = segment.CreateNic();
  auto b = segment.CreateNic();
  auto c = segment.CreateNic();
  int b_got = 0;
  int c_got = 0;
  b->SetReceiveHandler([&](const Datagram& d) {
    ++b_got;
    EXPECT_EQ(d.source, a->node_id());
  });
  c->SetReceiveHandler([&](const Datagram&) { ++c_got; });
  ASSERT_TRUE(a->SendUnicast(b->node_id(), {9}).ok());
  sim.Run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(c_got, 0);
}

TEST(SegmentTest, DeliveryDelayedByBaseDelayAndTransmission) {
  Simulation sim;
  SegmentConfig config;
  config.bandwidth_bps = 8e6;      // 1 MB/s.
  config.base_delay = Microseconds(100);
  config.overhead_bytes = 0;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(1).ok());
  SimTime arrival = -1;
  receiver->SetReceiveHandler([&](const Datagram&) { arrival = sim.now(); });
  Bytes payload(1000);  // 1 ms on the wire at 1 MB/s.
  ASSERT_TRUE(sender->SendMulticast(1, payload).ok());
  sim.Run();
  EXPECT_EQ(arrival, Milliseconds(1) + Microseconds(100));
}

TEST(SegmentTest, SharedMediumSerializesTransmissions) {
  Simulation sim;
  SegmentConfig config;
  config.bandwidth_bps = 8e6;
  config.base_delay = 0;
  config.overhead_bytes = 0;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(1).ok());
  std::vector<SimTime> arrivals;
  receiver->SetReceiveHandler([&](const Datagram&) {
    arrivals.push_back(sim.now());
  });
  // Two back-to-back 1 ms packets: second must arrive 1 ms after the first.
  Bytes payload(1000);
  ASSERT_TRUE(sender->SendMulticast(1, payload).ok());
  ASSERT_TRUE(sender->SendMulticast(1, payload).ok());
  sim.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], Milliseconds(1));
}

TEST(SegmentTest, TxQueueOverflowDropsPackets) {
  Simulation sim;
  SegmentConfig config;
  config.bandwidth_bps = 8e3;  // 1 KB/s: trivially saturated.
  config.tx_queue_limit = 2000;
  config.overhead_bytes = 0;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(1).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sender->SendMulticast(1, Bytes(1000)).ok());
  }
  sim.Run();
  EXPECT_GT(segment.stats().packets_dropped_queue, 0u);
  EXPECT_LT(segment.stats().packets_sent, 50u);
  EXPECT_EQ(segment.stats().packets_offered, 50u);
}

TEST(SegmentTest, RandomLossDropsApproximatelyTheConfiguredFraction) {
  Simulation sim;
  SegmentConfig config;
  config.loss_probability = 0.2;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(1).ok());
  int got = 0;
  receiver->SetReceiveHandler([&](const Datagram&) { ++got; });
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(sender->SendMulticast(1, {1, 2}).ok());
  }
  sim.Run();
  EXPECT_NEAR(got, 1600, 80);
  EXPECT_NEAR(static_cast<double>(segment.stats().deliveries_lost), 400.0,
              80.0);
}

TEST(SegmentTest, JitterViolatesUniformDelivery) {
  // With jitter, two receivers hear the same multicast at different times —
  // the §3.2 assumption is violable on demand.
  Simulation sim;
  SegmentConfig config;
  config.jitter = Milliseconds(10);
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto r1 = segment.CreateNic();
  auto r2 = segment.CreateNic();
  ASSERT_TRUE(r1->JoinGroup(1).ok());
  ASSERT_TRUE(r2->JoinGroup(1).ok());
  std::vector<SimTime> t1;
  std::vector<SimTime> t2;
  r1->SetReceiveHandler([&](const Datagram&) { t1.push_back(sim.now()); });
  r2->SetReceiveHandler([&](const Datagram&) { t2.push_back(sim.now()); });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(sender->SendMulticast(1, {7}).ok());
  }
  sim.Run();
  ASSERT_EQ(t1.size(), 50u);
  ASSERT_EQ(t2.size(), 50u);
  bool any_differ = false;
  for (size_t i = 0; i < 50; ++i) {
    if (t1[i] != t2[i]) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(SegmentTest, WithoutJitterDeliveryIsUniform) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto sender = segment.CreateNic();
  auto r1 = segment.CreateNic();
  auto r2 = segment.CreateNic();
  ASSERT_TRUE(r1->JoinGroup(1).ok());
  ASSERT_TRUE(r2->JoinGroup(1).ok());
  SimTime t1 = -1;
  SimTime t2 = -2;
  r1->SetReceiveHandler([&](const Datagram&) { t1 = sim.now(); });
  r2->SetReceiveHandler([&](const Datagram&) { t2 = sim.now(); });
  ASSERT_TRUE(sender->SendMulticast(1, {7}).ok());
  sim.Run();
  EXPECT_EQ(t1, t2);  // "Everybody receives a multicast packet at the same
                      // time" (§3.2).
}

TEST(SegmentTest, WireUtilizationAccountsOverhead) {
  Simulation sim;
  SegmentConfig config;
  config.overhead_bytes = 66;
  EthernetSegment segment(&sim, config);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(1).ok());
  ASSERT_TRUE(sender->SendMulticast(1, Bytes(934)).ok());
  sim.Run();
  EXPECT_EQ(segment.stats().bytes_on_wire, 1000u);
}

TEST(SegmentTest, GroupZeroIsReserved) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto nic = segment.CreateNic();
  EXPECT_FALSE(nic->JoinGroup(0).ok());
  EXPECT_FALSE(nic->SendMulticast(0, {1}).ok());
}

// ----------------------------------------------------------- UDP backend --

TEST(UdpTransportTest, LoopbackMulticastRoundTrip) {
  UdpTransportConfig config;
  config.port = 49100;
  UdpMulticastTransport sender(1, config);
  UdpMulticastTransport receiver(2, config);
  if (!sender.status().ok() || !receiver.status().ok()) {
    GTEST_SKIP() << "UDP sockets unavailable in this environment: "
                 << sender.status().ToString();
  }
  ASSERT_TRUE(receiver.JoinGroup(5).ok());
  Bytes got;
  receiver.SetReceiveHandler([&](const Datagram& d) { got = d.payload.ToBytes(); });
  ASSERT_TRUE(sender.SendMulticast(5, {10, 20, 30}).ok());
  // Poll a few times; loopback delivery is fast but not synchronous.
  for (int i = 0; i < 100 && got.empty(); ++i) {
    receiver.Poll();
    usleep(1000);
  }
  if (got.empty()) {
    GTEST_SKIP() << "loopback multicast not routable here";
  }
  EXPECT_EQ(got, Bytes({10, 20, 30}));
}

TEST(UdpTransportTest, UnicastRoundTrip) {
  UdpTransportConfig config;
  config.port = 49200;
  UdpMulticastTransport a(1, config);
  UdpMulticastTransport b(2, config);
  if (!a.status().ok() || !b.status().ok()) {
    GTEST_SKIP() << "UDP sockets unavailable in this environment";
  }
  Bytes got;
  b.SetReceiveHandler([&](const Datagram& d) { got = d.payload.ToBytes(); });
  ASSERT_TRUE(a.SendUnicast(2, {1, 2, 3, 4}).ok());
  for (int i = 0; i < 100 && got.empty(); ++i) {
    b.Poll();
    usleep(1000);
  }
  EXPECT_EQ(got, Bytes({1, 2, 3, 4}));
}

}  // namespace
}  // namespace espk
