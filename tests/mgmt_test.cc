#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/system.h"
#include "src/mgmt/agent.h"
#include "src/mgmt/catalog.h"
#include "src/mgmt/metrics_mib.h"
#include "src/mgmt/scrape.h"
#include "src/obs/metrics.h"

namespace espk {
namespace {

// ------------------------------------------------------------------- MIB --

TEST(MibTest, OidStringRoundTrip) {
  Oid oid = {1, 3, 6, 1, 4, 1, 9999, 1, 2};
  EXPECT_EQ(OidToString(oid), "1.3.6.1.4.1.9999.1.2");
  Result<Oid> back = OidFromString("1.3.6.1.4.1.9999.1.2");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, oid);
  EXPECT_FALSE(OidFromString("").ok());
  EXPECT_FALSE(OidFromString("1.2.x").ok());
}

TEST(MibTest, GetSetAndReadOnly) {
  Mib mib;
  int stored = 5;
  mib.Register(EspkOid({1}),
               {"rw", [&] { return std::to_string(stored); },
                [&](const std::string& v) {
                  stored = std::stoi(v);
                  return OkStatus();
                }});
  mib.Register(EspkOid({2}), {"ro", [] { return std::string("fixed"); },
                              nullptr});
  EXPECT_EQ(*mib.Get(EspkOid({1})), "5");
  ASSERT_TRUE(mib.Set(EspkOid({1}), "9").ok());
  EXPECT_EQ(stored, 9);
  Status ro = mib.Set(EspkOid({2}), "nope");
  EXPECT_EQ(ro.code(), StatusCode::kPermissionDenied);
  EXPECT_FALSE(mib.Get(EspkOid({3})).ok());
}

TEST(MibTest, WalkVisitsEverythingInOrder) {
  Mib mib;
  mib.Register(EspkOid({1, 1}), {"a", [] { return std::string("1"); }, nullptr});
  mib.Register(EspkOid({1, 2}), {"b", [] { return std::string("2"); }, nullptr});
  mib.Register(EspkOid({2, 1}), {"c", [] { return std::string("3"); }, nullptr});
  std::vector<Oid> visited;
  Oid cursor;  // Empty = start of MIB.
  for (;;) {
    Result<Oid> next = mib.GetNext(cursor);
    if (!next.ok()) {
      break;
    }
    visited.push_back(*next);
    cursor = *next;
  }
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], EspkOid({1, 1}));
  EXPECT_EQ(visited[1], EspkOid({1, 2}));
  EXPECT_EQ(visited[2], EspkOid({2, 1}));
}

// ------------------------------------------------- Agent + console + sim --

class MgmtFixture : public ::testing::Test {
 protected:
  MgmtFixture() {
    channel_ = *system_.CreateChannel("music");
    PlayerAppOptions opts;
    opts.config = AudioConfig::CdQuality();
    EXPECT_TRUE(system_
                    .StartPlayer(channel_,
                                 std::make_unique<MusicLikeGenerator>(1), opts)
                    .ok());
    SpeakerOptions so;
    so.name = "es-lobby";
    so.decode_speed_factor = 0.05;
    speaker_ = *system_.AddSpeaker(so, channel_->group);
    agent_ = std::make_unique<SpeakerAgent>(
        system_.sim(), system_.NicOf(speaker_), speaker_);
    console_nic_ = system_.lan()->CreateNic();
    console_ = std::make_unique<MgmtConsole>(system_.sim(),
                                             console_nic_.get());
  }

  EthernetSpeakerSystem system_;
  Channel* channel_ = nullptr;
  EthernetSpeaker* speaker_ = nullptr;
  std::unique_ptr<SpeakerAgent> agent_;
  std::unique_ptr<SimNic> console_nic_;
  std::unique_ptr<MgmtConsole> console_;
};

TEST_F(MgmtFixture, GetNameAndStats) {
  system_.sim()->RunUntil(Seconds(3));
  std::vector<MgmtResponse> responses;
  console_->Get(0, MibOidName(),
                [&](const MgmtResponse& r) { responses.push_back(r); });
  system_.sim()->RunFor(Milliseconds(100));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].ok);
  EXPECT_EQ(responses[0].value, "es-lobby");

  responses.clear();
  console_->Get(0, MibOidChunksPlayed(),
                [&](const MgmtResponse& r) { responses.push_back(r); });
  system_.sim()->RunFor(Milliseconds(100));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_GT(std::stoul(responses[0].value), 0u);
}

TEST_F(MgmtFixture, SetVolumeTakesEffect) {
  system_.sim()->RunUntil(Seconds(1));
  bool ok = false;
  console_->Set(0, MibOidVolume(), "0.25",
                [&](const MgmtResponse& r) { ok = r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(ok);
  EXPECT_FLOAT_EQ(speaker_->gain(), 0.25f);

  // Reject nonsense and out-of-range.
  bool rejected = true;
  console_->Set(0, MibOidVolume(), "loud",
                [&](const MgmtResponse& r) { rejected = !r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(rejected);
  console_->Set(0, MibOidVolume(), "100",
                [&](const MgmtResponse& r) { rejected = !r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(rejected);
  EXPECT_FLOAT_EQ(speaker_->gain(), 0.25f);
}

TEST_F(MgmtFixture, TargetedRequestIgnoredByOthers) {
  system_.sim()->RunUntil(Seconds(1));
  int responses = 0;
  // Address a node id that is not the speaker's.
  console_->Get(99999, MibOidName(),
                [&](const MgmtResponse&) { ++responses; });
  system_.sim()->RunFor(Milliseconds(200));
  EXPECT_EQ(responses, 0);
}

TEST_F(MgmtFixture, RemoteChannelSwitch) {
  // §5.3 "remote playback channel selection".
  Channel* voice = *system_.CreateChannel("voice");
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  ASSERT_TRUE(system_
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(2), opts)
                  .ok());
  system_.sim()->RunUntil(Seconds(2));
  EXPECT_EQ(speaker_->tuned_group().value_or(0), channel_->group);

  console_->Set(0, MibOidChannel(), std::to_string(voice->group), nullptr);
  system_.sim()->RunFor(Seconds(2));
  EXPECT_EQ(speaker_->tuned_group().value_or(0), voice->group);
  ASSERT_TRUE(speaker_->ready());
  EXPECT_EQ(speaker_->config()->sample_rate, 8000);
}

TEST_F(MgmtFixture, RemoteSubscribeAndUnsubscribe) {
  Channel* voice = *system_.CreateChannel("voice");
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  ASSERT_TRUE(system_
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(4), opts)
                  .ok());
  system_.sim()->RunUntil(Seconds(1));

  // Add the voice stream on top of music via .1.6.
  bool ok = false;
  console_->Set(0, MibOidSubscribe(), std::to_string(voice->group),
                [&](const MgmtResponse& r) { ok = r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(ok);
  ASSERT_EQ(speaker_->subscriptions().size(), 2u);

  // .1.5 reports both groups, comma-joined in subscription order.
  std::vector<MgmtResponse> responses;
  console_->Get(0, MibOidSubscriptions(),
                [&](const MgmtResponse& r) { responses.push_back(r); });
  system_.sim()->RunFor(Milliseconds(100));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].value, std::to_string(channel_->group) + "," +
                                    std::to_string(voice->group));

  // Double subscribe and the reserved group 0 are both rejected.
  bool rejected = false;
  console_->Set(0, MibOidSubscribe(), std::to_string(voice->group),
                [&](const MgmtResponse& r) { rejected = !r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(rejected);
  rejected = false;
  console_->Set(0, MibOidSubscribe(), "0",
                [&](const MgmtResponse& r) { rejected = !r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(rejected);

  // Drop the original music subscription via .1.7: only voice remains, and
  // the speaker starts playing it once its next control packet lands.
  ok = false;
  console_->Set(0, MibOidUnsubscribe(), std::to_string(channel_->group),
                [&](const MgmtResponse& r) { ok = r.ok; });
  system_.sim()->RunFor(Milliseconds(100));
  EXPECT_TRUE(ok);
  ASSERT_EQ(speaker_->subscriptions().size(), 1u);
  EXPECT_EQ(speaker_->subscriptions()[0], voice->group);
  system_.sim()->RunFor(Seconds(2));
  ASSERT_TRUE(speaker_->ready());
  EXPECT_EQ(speaker_->config()->sample_rate, 8000);
}

TEST_F(MgmtFixture, OverrideAndRestore) {
  // §5.3: "movies shown on TV sets on airplane seats can be overridden by
  // crew announcements".
  Channel* announcements = *system_.CreateChannel("crew");
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  ASSERT_TRUE(system_
                  .StartPlayer(announcements,
                               std::make_unique<SpeechLikeGenerator>(3), opts)
                  .ok());
  system_.sim()->RunUntil(Seconds(2));
  GroupId original = speaker_->tuned_group().value_or(0);

  console_->OverrideAll(announcements->group);
  system_.sim()->RunFor(Seconds(2));
  EXPECT_EQ(speaker_->tuned_group().value_or(0), announcements->group);

  console_->RestoreAll();
  system_.sim()->RunFor(Seconds(2));
  EXPECT_EQ(speaker_->tuned_group().value_or(0), original);
}

TEST_F(MgmtFixture, WalkTheWholeMib) {
  system_.sim()->RunUntil(Seconds(1));
  std::vector<Oid> walked;
  std::function<void(Oid)> step = [&](Oid cursor) {
    console_->GetNext(0, cursor, [&, cursor](const MgmtResponse& r) {
      if (!r.ok) {
        return;  // End of MIB.
      }
      walked.push_back(r.oid);
      step(r.oid);
    });
  };
  step({});
  system_.sim()->RunFor(Seconds(1));
  EXPECT_EQ(walked.size(), 10u);  // All registered speaker OIDs.
}

// ------------------------------------------------ Subscription directory --

TEST(DirectoryTest, RegisterAllocatesGroupsAndRejectsDuplicates) {
  SubscriptionDirectory directory;
  Result<const StreamRecord*> music =
      directory.RegisterStream("music", 1, CodecId::kVorbix);
  ASSERT_TRUE(music.ok());
  EXPECT_EQ((*music)->group, kFirstChannelGroup);
  Result<const StreamRecord*> voice =
      directory.RegisterStream("voice", 2, CodecId::kRaw);
  ASSERT_TRUE(voice.ok());
  EXPECT_EQ((*voice)->group, kFirstChannelGroup + 1);
  EXPECT_EQ(directory.RegisterStream("music", 3, CodecId::kRaw)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(directory.stream_count(), 2u);
  EXPECT_EQ(directory.FindByName("voice"), *voice);
  EXPECT_EQ(directory.FindByGroup(kFirstChannelGroup), *music);
  EXPECT_EQ(directory.FindByStreamId(2), *voice);
  EXPECT_EQ(directory.FindByName("nope"), nullptr);
}

TEST(DirectoryTest, ZonePolicyGatesSubscriptions) {
  SubscriptionDirectory directory;
  ASSERT_TRUE(directory.RegisterStream("music", 1, CodecId::kRaw).ok());
  EXPECT_TRUE(directory.CheckSubscription("music", 1).ok());  // Empty = any.
  ASSERT_TRUE(directory.SetZonePolicy("music", {0, 2}).ok());
  EXPECT_TRUE(directory.CheckSubscription("music", 0).ok());
  EXPECT_EQ(directory.CheckSubscription("music", 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(directory.CheckSubscription("music", 2).ok());
  EXPECT_EQ(directory.CheckSubscription("nope", 0).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(directory.SetZonePolicy("nope", {1}).ok());
}

TEST(DirectoryTest, WhoHearsWhatListsStreamsSubscribersAndForeignGroups) {
  SubscriptionDirectory directory;
  ASSERT_TRUE(directory.RegisterStream("music", 1, CodecId::kVorbix).ok());
  ASSERT_TRUE(directory.RegisterStream("voice", 2, CodecId::kRaw).ok());
  directory.UpdateBindings({
      {"es-0", /*zone=*/-1, {{kFirstChannelGroup, 120, 2}}},
      {"es-1",
       /*zone=*/1,
       {{kFirstChannelGroup, 80, 0}, {kFirstChannelGroup + 1, 40, 1}}},
      {"es-2", /*zone=*/2, {{999, 7, 0}}},  // Hand-tuned foreign group.
  });
  std::string view = directory.RenderWhoHearsWhat();
  EXPECT_NE(view.find("subscription directory: 2 streams, 3 speakers"),
            std::string::npos);
  EXPECT_NE(view.find("music (stream 1, group 16, codec vorbix"),
            std::string::npos);
  EXPECT_NE(view.find("es-0: chunks=120 late=2"), std::string::npos);
  EXPECT_NE(view.find("es-1 [zone 1]: chunks=80 late=0"), std::string::npos);
  EXPECT_NE(view.find("unregistered group 999"), std::string::npos);
  EXPECT_NE(view.find("es-2 [zone 2]: chunks=7 late=0"), std::string::npos);
  // Streams with nobody listening say so.
  SubscriptionDirectory empty;
  ASSERT_TRUE(empty.RegisterStream("lonely", 9, CodecId::kRaw).ok());
  EXPECT_NE(empty.RenderWhoHearsWhat().find("(no subscribers)"),
            std::string::npos);
}

// -------------------------------------------------- Metrics -> MIB bridge --

TEST(MetricsMibTest, ExportRegistersPerKindArcs) {
  MetricsRegistry registry;
  registry.GetCounter("kernel.syscalls", "total syscalls")->Increment(3);
  registry.GetGauge("lan.load", [] { return 2.5; });
  HistogramMetric* h = registry.GetHistogram("enc.ms", 0.0, 10.0, 10);
  h->Observe(4.0);
  Mib mib;
  // counter + gauge + 4 histogram aspects.
  EXPECT_EQ(ExportMetricsToMib(&registry, &mib), 6u);
  EXPECT_EQ(mib.size(), 6u);
  EXPECT_EQ(*mib.Get(EspkOid({9, 1, 1})), "3");
  EXPECT_EQ(*mib.Get(EspkOid({9, 2, 1})), "2.5");
  EXPECT_EQ(*mib.Get(EspkOid({9, 3, 1})), "1");  // Histogram count.
  EXPECT_EQ(*mib.Get(EspkOid({9, 3, 2})), "4");  // Mean.
  // The variables read through to the live metrics.
  registry.GetCounter("kernel.syscalls")->Increment();
  EXPECT_EQ(*mib.Get(EspkOid({9, 1, 1})), "4");
  // Descriptions carry the metric name and help text for the console.
  const std::string* description = mib.Describe(EspkOid({9, 1, 1}));
  ASSERT_NE(description, nullptr);
  EXPECT_NE(description->find("kernel.syscalls"), std::string::npos);
  EXPECT_NE(description->find("total syscalls"), std::string::npos);
}

TEST_F(MgmtFixture, MibWalkEnumeratesLiveSystemMetrics) {
  system_.sim()->RunUntil(Seconds(3));
  Mib mib;
  ASSERT_GT(ExportMetricsToMib(system_.metrics(), &mib), 0u);
  // Walk the whole tree via GetNext, as an NMS console would.
  std::map<std::string, double> walked;
  Oid cursor;
  for (;;) {
    Result<Oid> next = mib.GetNext(cursor);
    if (!next.ok()) {
      break;
    }
    cursor = *next;
    const std::string* description = mib.Describe(cursor);
    ASSERT_NE(description, nullptr);
    Result<std::string> value = mib.Get(cursor);
    ASSERT_TRUE(value.ok()) << OidToString(cursor);
    walked[*description] = std::stod(*value);
  }
  EXPECT_EQ(walked.size(), mib.size());
  auto live = [&](const std::string& needle) -> double {
    for (const auto& [description, value] : walked) {
      if (description.find(needle) != std::string::npos) {
        return value;
      }
    }
    ADD_FAILURE() << needle << " missing from the MIB walk";
    return 0.0;
  };
  // Every layer shows live (non-zero) telemetry after 3 simulated seconds.
  EXPECT_GT(live("kernel.syscalls"), 0.0);
  EXPECT_GT(live("kernel.context_switches"), 0.0);
  EXPECT_GT(live("lan.packets_sent"), 0.0);
  EXPECT_GT(live("rebroadcast.1.data_packets"), 0.0);
  EXPECT_GT(live("speaker.0.chunks_played"), 0.0);
  EXPECT_GT(live("speaker.0.lateness_ms count"), 0.0);
}

TEST(MgmtRequestTest, SerializationRoundTrip) {
  MgmtRequest request;
  request.request_id = 7;
  request.target = 3;
  request.op = MgmtOp::kSet;
  request.oid = MibOidVolume();
  request.value = "0.5";
  Result<MgmtRequest> back = MgmtRequest::Deserialize(request.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 7u);
  EXPECT_EQ(back->target, 3u);
  EXPECT_EQ(back->op, MgmtOp::kSet);
  EXPECT_EQ(back->oid, MibOidVolume());
  EXPECT_EQ(back->value, "0.5");
}

TEST(MgmtResponseTest, SerializationRoundTrip) {
  MgmtResponse response;
  response.request_id = 9;
  response.responder = 4;
  response.ok = true;
  response.oid = MibOidChannel();
  response.value = "16";
  Result<MgmtResponse> back =
      MgmtResponse::Deserialize(response.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->value, "16");
}

TEST(MgmtResponseTest, RejectsGarbage) {
  EXPECT_FALSE(MgmtResponse::Deserialize({1, 2, 3}).ok());
  EXPECT_FALSE(MgmtRequest::Deserialize({}).ok());
}

// --------------------------------------------------------------- Traps ----

TEST(MgmtTrapTest, SerializationRoundTripIsExact) {
  MgmtTrap trap;
  trap.trap_seq = 7;
  trap.source = 42;
  trap.firing = true;
  trap.rule = "speaker.0.silence_rate";
  trap.observed = 497.34825193e-3;  // Doubles travel as raw bit patterns.
  trap.threshold = 50.0;
  trap.at = Seconds(8) + Milliseconds(100);
  Result<MgmtTrap> back = MgmtTrap::Deserialize(trap.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->trap_seq, 7u);
  EXPECT_EQ(back->source, 42u);
  EXPECT_TRUE(back->firing);
  EXPECT_EQ(back->rule, "speaker.0.silence_rate");
  EXPECT_EQ(back->observed, 497.34825193e-3);  // Bit-exact, not near.
  EXPECT_EQ(back->threshold, 50.0);
  EXPECT_EQ(back->at, Seconds(8) + Milliseconds(100));
}

TEST(MgmtTrapTest, TrapFramesAndPollingFramesRejectEachOther) {
  MgmtTrap trap;
  trap.rule = "r";
  Bytes trap_wire = trap.Serialize();
  // The request/response parsers reject the kTrap op byte, which is what
  // lets traps share the management group with polling traffic.
  EXPECT_FALSE(MgmtRequest::Deserialize(trap_wire).ok());
  EXPECT_FALSE(MgmtResponse::Deserialize(trap_wire).ok());
  MgmtRequest request;
  request.op = MgmtOp::kGet;
  request.oid = MibOidName();
  EXPECT_FALSE(MgmtTrap::Deserialize(request.Serialize()).ok());
  EXPECT_FALSE(MgmtTrap::Deserialize({1, 2, 3}).ok());
}

TEST_F(MgmtFixture, AlertTransitionsArriveAsTraps) {
  HealthMonitor* health = system_.EnableHealthMonitoring();
  agent_->WatchAlerts(health->engine());
  // A canary rule over a missing series evaluates to 0, which breaches
  // "> -1" on the first sampler tick — a deterministic immediate fire.
  health->AddRule({.name = "mgmt.canary",
                   .series = "no.such.series",
                   .threshold = -1.0});
  std::vector<MgmtTrap> handled;
  console_->SetTrapHandler([&](const MgmtTrap& t) { handled.push_back(t); });
  system_.sim()->RunFor(Seconds(1));

  ASSERT_EQ(console_->traps_received(), 1u);
  ASSERT_EQ(handled.size(), 1u);
  EXPECT_EQ(handled[0].rule, "mgmt.canary");
  EXPECT_TRUE(handled[0].firing);
  EXPECT_EQ(handled[0].trap_seq, 1u);
  EXPECT_EQ(handled[0].source, system_.NicOf(speaker_)->node_id());
  EXPECT_EQ(handled[0].threshold, -1.0);
  EXPECT_EQ(console_->trap_log().size(), 1u);
  // The agent keeps answering polls with the trap sender attached.
  std::vector<MgmtResponse> responses;
  console_->Get(0, MibOidName(),
                [&](const MgmtResponse& r) { responses.push_back(r); });
  system_.sim()->RunFor(Milliseconds(100));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].value, "es-lobby");
}

TEST(MetricsMibTest, ExportAlertsPublishesPerRuleRows) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  Counter* signal = registry.GetCounter("sig");
  TimeSeriesSampler sampler(&sim, &registry);
  sampler.Watch("sig");
  AlertEngine engine(&sim, &sampler);
  engine.AddRule({.name = "high", .series = "sig", .threshold = 10.0});
  engine.AddRule({.name = "low",
                  .series = "sig",
                  .comparison = AlertComparison::kBelow,
                  .threshold = -5.0});
  Mib mib;
  EXPECT_EQ(ExportAlertsToMib(&engine, &mib), 10u);  // 5 rows per rule.
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 1})), "high");
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 2})), "inactive");
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 4})), "10");
  EXPECT_EQ(*mib.Get(EspkOid({10, 2, 1})), "low");
  // The rows read through to the live engine.
  signal->Increment(42);
  sampler.SampleNow();
  engine.Evaluate(sim.now());
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 2})), "firing");
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 3})), "42");
  EXPECT_EQ(*mib.Get(EspkOid({10, 1, 5})), "1");
  EXPECT_EQ(*mib.Get(EspkOid({10, 2, 2})), "inactive");
}

// ----------------------------------------------------------- Catalog ----

TEST(CatalogTest, BrowserLearnsAnnouncedChannels) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto producer_nic = segment.CreateNic();
  auto browser_nic = segment.CreateNic();

  AnnounceService service(&sim, producer_nic.get(), Seconds(1));
  AnnounceEntry music;
  music.stream_id = 1;
  music.group = kFirstChannelGroup;
  music.name = "campus radio";
  music.config = AudioConfig::CdQuality();
  music.codec = CodecId::kVorbix;
  service.SetEntries({music});
  service.Start();

  CatalogBrowser browser(&sim, browser_nic.get());
  sim.RunUntil(Seconds(3));

  auto channels = browser.Channels();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0].name, "campus radio");
  EXPECT_EQ(channels[0].group, kFirstChannelGroup);
  Result<AnnounceEntry> found = browser.Find("campus radio");
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(browser.Find("no such channel").ok());
}

TEST(CatalogTest, StaleChannelsExpire) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto producer_nic = segment.CreateNic();
  auto browser_nic = segment.CreateNic();
  AnnounceService service(&sim, producer_nic.get(), Seconds(1));
  AnnounceEntry entry;
  entry.stream_id = 1;
  entry.group = 20;
  entry.name = "ephemeral";
  entry.config = AudioConfig::PhoneQuality();
  service.SetEntries({entry});
  service.Start();
  CatalogBrowser browser(&sim, browser_nic.get());
  sim.RunUntil(Seconds(3));
  ASSERT_EQ(browser.Channels().size(), 1u);
  // The producer stops announcing; after max_age the channel disappears.
  service.Stop();
  sim.RunUntil(Seconds(20));
  EXPECT_TRUE(browser.Channels(Seconds(10)).empty());
}

// -------------------------------------------------------------- Scrape ----

TEST(ScrapeWireTest, RequestAndChunkRoundTrip) {
  ScrapeRequest request;
  request.request_id = 77;
  request.target = 9;
  Result<ScrapeRequest> req_back =
      ScrapeRequest::Deserialize(request.Serialize());
  ASSERT_TRUE(req_back.ok());
  EXPECT_EQ(req_back->request_id, 77u);
  EXPECT_EQ(req_back->target, 9u);

  ScrapeChunk chunk;
  chunk.request_id = 77;
  chunk.responder = 9;
  chunk.index = 1;
  chunk.count = 3;
  chunk.fragment = {0xde, 0xad, 0xbe, 0xef};
  Result<ScrapeChunk> back = ScrapeChunk::Deserialize(chunk.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->request_id, 77u);
  EXPECT_EQ(back->responder, 9u);
  EXPECT_EQ(back->index, 1u);
  EXPECT_EQ(back->count, 3u);
  EXPECT_EQ(back->fragment, chunk.fragment);
}

TEST(ScrapeWireTest, RejectsMalformedChunks) {
  ScrapeChunk chunk;
  chunk.count = 0;  // Zero fragments can never complete.
  EXPECT_FALSE(ScrapeChunk::Deserialize(chunk.Serialize()).ok());
  chunk.count = 2;
  chunk.index = 2;  // Out of range for its own count.
  EXPECT_FALSE(ScrapeChunk::Deserialize(chunk.Serialize()).ok());
  EXPECT_FALSE(ScrapeRequest::Deserialize({1, 2, 3}).ok());
  EXPECT_FALSE(ScrapeChunk::Deserialize({}).ok());
}

TEST(ScrapeWireTest, ScrapeAndPollingFramesRejectEachOther) {
  // Ops 6/7 share the management group with ops 1..5; every parser must
  // reject the other families' op bytes.
  ScrapeRequest scrape;
  scrape.request_id = 5;
  Bytes scrape_wire = scrape.Serialize();
  EXPECT_FALSE(MgmtRequest::Deserialize(scrape_wire).ok());
  EXPECT_FALSE(MgmtResponse::Deserialize(scrape_wire).ok());
  EXPECT_FALSE(MgmtTrap::Deserialize(scrape_wire).ok());
  MgmtRequest request;
  request.op = MgmtOp::kGet;
  request.oid = MibOidName();
  Bytes poll_wire = request.Serialize();
  EXPECT_FALSE(ScrapeRequest::Deserialize(poll_wire).ok());
  EXPECT_FALSE(ScrapeChunk::Deserialize(poll_wire).ok());
  MgmtTrap trap;
  trap.rule = "r";
  EXPECT_FALSE(ScrapeRequest::Deserialize(trap.Serialize()).ok());
}

TEST(ScrapeChunkingTest, EmptyPayloadTravelsAsOneEmptyChunk) {
  std::vector<ScrapeChunk> chunks = SplitIntoChunks(1, 2, Bytes{}, 1024);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].count, 1u);
  EXPECT_TRUE(chunks[0].fragment.empty());
  ChunkAssembler assembler;
  std::optional<Bytes> done = assembler.Add(chunks[0]);
  ASSERT_TRUE(done.has_value());
  EXPECT_TRUE(done->empty());
}

TEST(ScrapeChunkingTest, ReassemblesOutOfOrderIgnoringNoise) {
  Bytes payload(2500);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  std::vector<ScrapeChunk> chunks = SplitIntoChunks(42, 7, payload, 1024);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].fragment.size(), 1024u);
  EXPECT_EQ(chunks[2].fragment.size(), 2500u - 2048u);

  ChunkAssembler assembler;
  EXPECT_FALSE(assembler.Add(chunks[2]).has_value());
  // A chunk from some other request and a duplicate are both ignored.
  ScrapeChunk foreign = chunks[1];
  foreign.request_id = 99;
  EXPECT_FALSE(assembler.Add(foreign).has_value());
  EXPECT_FALSE(assembler.Add(chunks[2]).has_value());
  EXPECT_FALSE(assembler.Add(chunks[0]).has_value());
  std::optional<Bytes> done = assembler.Add(chunks[1]);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload);
  assembler.Reset();
  EXPECT_FALSE(assembler.started());
}

TEST(ScrapeChunkingTest, DuplicateChunksNeverDoubleCountTowardCompletion) {
  // A retransmitted fragment must not advance the received counter past the
  // missing one: feed every chunk but the last twice, then the last once.
  Bytes payload(3000, 0x5a);
  std::vector<ScrapeChunk> chunks = SplitIntoChunks(8, 3, payload, 1024);
  ASSERT_EQ(chunks.size(), 3u);
  ChunkAssembler assembler;
  for (int round = 0; round < 2; ++round) {
    EXPECT_FALSE(assembler.Add(chunks[0]).has_value());
    EXPECT_FALSE(assembler.Add(chunks[1]).has_value());
  }
  EXPECT_EQ(assembler.received(), 2u);
  std::optional<Bytes> done = assembler.Add(chunks[2]);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload);
}

TEST(ScrapeChunkingTest, InterleavedTwoStationSnapshotsStaySeparate) {
  // The collector runs one assembler per in-flight target; chunks from two
  // stations answering different requests interleave on the wire. Each
  // assembler must ignore the other request entirely and reassemble only its
  // own snapshot, in any arrival order.
  Bytes payload_a(2100);
  Bytes payload_b(2600);
  for (size_t i = 0; i < payload_a.size(); ++i) {
    payload_a[i] = static_cast<uint8_t>(i);
  }
  for (size_t i = 0; i < payload_b.size(); ++i) {
    payload_b[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  std::vector<ScrapeChunk> a = SplitIntoChunks(21, 4, payload_a, 1024);
  std::vector<ScrapeChunk> b = SplitIntoChunks(22, 5, payload_b, 1024);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);

  ChunkAssembler for_a;
  ChunkAssembler for_b;
  std::optional<Bytes> done_a;
  std::optional<Bytes> done_b;
  // Interleaved, out of order: b2, a0, b0, a2, b1, a1.
  for (const ScrapeChunk* chunk :
       {&b[2], &a[0], &b[0], &a[2], &b[1], &a[1]}) {
    if (std::optional<Bytes> done = for_a.Add(*chunk)) {
      done_a = std::move(*done);
    }
    if (std::optional<Bytes> done = for_b.Add(*chunk)) {
      done_b = std::move(*done);
    }
  }
  // for_a saw b[2] first, so it locked onto request 22 — that is the
  // collector's real arrangement inverted; what matters is each assembler
  // completes exactly one request with that request's bytes intact.
  ASSERT_TRUE(done_a.has_value());
  ASSERT_TRUE(done_b.has_value());
  EXPECT_EQ(*done_a, payload_b);
  EXPECT_EQ(*done_b, payload_b);

  // Pinned variant: seed each assembler with its own request first, as the
  // collector does (it creates the assembler when the request goes out).
  ChunkAssembler pinned_a;
  ChunkAssembler pinned_b;
  (void)pinned_a.Add(a[0]);
  (void)pinned_b.Add(b[0]);
  done_a.reset();
  done_b.reset();
  for (const ScrapeChunk* chunk : {&b[2], &a[2], &b[1], &a[1]}) {
    if (std::optional<Bytes> done = pinned_a.Add(*chunk)) {
      done_a = std::move(*done);
    }
    if (std::optional<Bytes> done = pinned_b.Add(*chunk)) {
      done_b = std::move(*done);
    }
  }
  ASSERT_TRUE(done_a.has_value());
  ASSERT_TRUE(done_b.has_value());
  EXPECT_EQ(*done_a, payload_a);
  EXPECT_EQ(*done_b, payload_b);
}

TEST(ScrapeChunkingTest, TruncatedFinalChunkNeverCompletes) {
  // A final fragment whose wire bytes were cut short fails to parse, so the
  // assembler stays one short forever — the collector's per-attempt timeout
  // is what recovers, never a half-assembled snapshot.
  Bytes payload(2500, 0xc3);
  std::vector<ScrapeChunk> chunks = SplitIntoChunks(31, 6, payload, 1024);
  ASSERT_EQ(chunks.size(), 3u);
  Bytes wire = chunks[2].Serialize();
  wire.resize(wire.size() - 100);  // Truncated mid-fragment.
  EXPECT_FALSE(ScrapeChunk::Deserialize(wire).ok());

  ChunkAssembler assembler;
  EXPECT_FALSE(assembler.Add(chunks[0]).has_value());
  EXPECT_FALSE(assembler.Add(chunks[1]).has_value());
  EXPECT_EQ(assembler.received(), 2u);
  EXPECT_EQ(assembler.expected(), 3u);
  // A later chunk claiming a different fragment count (a restarted agent
  // re-chunking a changed snapshot) is ignored rather than spliced in.
  ScrapeChunk rechunked = chunks[2];
  rechunked.count = 4;
  EXPECT_FALSE(assembler.Add(rechunked).has_value());
  EXPECT_EQ(assembler.received(), 2u);
  // The intact final chunk still completes the original layout.
  std::optional<Bytes> done = assembler.Add(chunks[2]);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, payload);
}

TEST(ScrapeAgentTest, AnswersTargetedRequestsWithUnicastChunks) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto station_nic = segment.CreateNic();
  auto console_nic = segment.CreateNic();
  const Bytes snapshot = {1, 2, 3, 4, 5};
  ScrapeAgentOptions options;
  options.max_chunk_bytes = 2;  // Forces real fragmentation: 3 chunks.
  ScrapeAgent agent(&sim, station_nic.get(),
                    [&snapshot] { return snapshot; }, options);
  ChunkAssembler assembler;
  std::optional<Bytes> reassembled;
  console_nic->SetReceiveHandler([&](const Datagram& d) {
    Result<ScrapeChunk> chunk = ScrapeChunk::Deserialize(d.payload);
    if (chunk.ok()) {
      if (std::optional<Bytes> done = assembler.Add(*chunk)) {
        reassembled = std::move(*done);
      }
    }
  });

  ScrapeRequest mine;
  mine.request_id = 11;
  mine.target = station_nic->node_id();
  (void)console_nic->SendMulticast(kMgmtGroup, mine.Serialize());
  // A request aimed at some other node must be ignored entirely.
  ScrapeRequest other;
  other.request_id = 12;
  other.target = station_nic->node_id() + 100;
  (void)console_nic->SendMulticast(kMgmtGroup, other.Serialize());
  sim.RunFor(Milliseconds(10));

  ASSERT_TRUE(reassembled.has_value());
  EXPECT_EQ(*reassembled, snapshot);
  EXPECT_EQ(agent.scrapes_served(), 1u);
  EXPECT_EQ(agent.chunks_sent(), 3u);
}

TEST(MgmtConsoleTest, CountsTrapSequenceGapsPerSender) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto console_nic = segment.CreateNic();
  auto sender_nic = segment.CreateNic();
  MetricsRegistry registry(&sim);
  MgmtConsole console(&sim, console_nic.get(), &registry);
  auto send = [&](NodeId source, uint32_t seq) {
    MgmtTrap trap;
    trap.trap_seq = seq;
    trap.source = source;
    trap.rule = "rule";
    (void)sender_nic->SendMulticast(kMgmtGroup, trap.Serialize());
  };
  // Sender 42 skips seq 2 (one lost trap) and seqs 5-6 (two more). Sender
  // 43 is gapless — its numbering is independent of 42's.
  for (uint32_t seq : {1, 3, 4, 7}) {
    send(42, seq);
  }
  send(43, 1);
  send(43, 2);
  sim.RunFor(Milliseconds(10));
  EXPECT_EQ(console.traps_received(), 6u);
  EXPECT_EQ(console.sequence_gaps(), 3u);
  const Metric* gaps = registry.Find("trap.sequence_gaps");
  ASSERT_NE(gaps, nullptr);
  EXPECT_EQ(static_cast<const Counter*>(gaps)->value(), 3u);
  // A late-arriving old trap fills no gap and must not create a phantom
  // one either.
  send(42, 5);
  sim.RunFor(Milliseconds(10));
  EXPECT_EQ(console.sequence_gaps(), 3u);
  EXPECT_EQ(console.traps_received(), 7u);
}

TEST(CatalogTest, UpdatedEntryReplacesOld) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto producer_nic = segment.CreateNic();
  auto browser_nic = segment.CreateNic();
  AnnounceService service(&sim, producer_nic.get(), Seconds(1));
  AnnounceEntry entry;
  entry.stream_id = 1;
  entry.group = 20;
  entry.name = "before";
  entry.config = AudioConfig::PhoneQuality();
  service.SetEntries({entry});
  service.Start();
  CatalogBrowser browser(&sim, browser_nic.get());
  sim.RunUntil(Seconds(2));
  entry.name = "after";
  service.SetEntries({entry});
  sim.RunUntil(Seconds(4));
  auto channels = browser.Channels();
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0].name, "after");
}

}  // namespace
}  // namespace espk
