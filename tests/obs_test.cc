#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/lan/segment.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

// ----------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, GetOrRegisterReturnsSameInstance) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("kernel.syscalls", "number of syscalls");
  Counter* b = registry.GetCounter("kernel.syscalls");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
  // Help text from the first registration sticks.
  EXPECT_EQ(registry.Find("kernel.syscalls")->help(), "number of syscalls");
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ScopedLogCapture capture;  // Swallow (and check) the error log.
  ASSERT_NE(registry.GetCounter("x"), nullptr);
  EXPECT_EQ(registry.GetGauge("x", [] { return 1.0; }), nullptr);
  EXPECT_EQ(registry.GetHistogram("x", 0.0, 1.0, 10), nullptr);
  EXPECT_TRUE(capture.Contains("re-registered"));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, FindAndRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("b");
  registry.GetGauge("a", [] { return 2.5; });
  EXPECT_EQ(registry.Find("missing"), nullptr);
  // entries() preserves registration order, not name order — the MIB arcs
  // and the exposition depend on that.
  ASSERT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.entries()[0].name, "b");
  EXPECT_EQ(registry.entries()[1].name, "a");
}

TEST(MetricsRegistryTest, AliasReExportsUnderNewName) {
  MetricsRegistry station;
  MetricsRegistry fleet;
  Counter* c = station.GetCounter("speaker.late_drops");
  c->Increment(3);
  ASSERT_TRUE(fleet.Alias("speaker.0.late_drops", c));
  const Metric* found = fleet.Find("speaker.0.late_drops");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(static_cast<const Counter*>(found)->value(), 3u);
  ASSERT_EQ(fleet.entries().size(), 1u);
  EXPECT_TRUE(fleet.entries()[0].aliased);
  // The alias name, not the owner-side name, drives the exposition.
  EXPECT_NE(fleet.TextExposition().find("espk_speaker_0_late_drops 3"),
            std::string::npos);
  // Re-aliasing the same metric is idempotent; a different metric under the
  // taken name is rejected.
  EXPECT_TRUE(fleet.Alias("speaker.0.late_drops", c));
  ScopedLogCapture capture;
  EXPECT_FALSE(fleet.Alias("speaker.0.late_drops", fleet.GetCounter("other")));
  EXPECT_TRUE(capture.Contains("cannot alias"));
  EXPECT_EQ(fleet.entries().size(), 2u);
  // ResetAll on the aliasing registry must not clear metrics it merely views.
  fleet.ResetAll();
  EXPECT_EQ(c->value(), 3u);
  station.ResetAll();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsRegistryTest, ResetAllClearsOwnedMetrics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  HistogramMetric* h = registry.GetHistogram("h", 0.0, 10.0, 10);
  double external = 7.0;
  registry.GetGauge("g", [&external] { return external; });
  c->Increment(5);
  h->Observe(3.0);
  registry.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->running().count(), 0);
  EXPECT_EQ(h->histogram().count(), 0);
  // Gauges read external state; reset must not touch it.
  EXPECT_EQ(static_cast<const Gauge*>(registry.Find("g"))->Value(), 7.0);
}

TEST(MetricsRegistryTest, PrometheusNameFlattening) {
  EXPECT_EQ(PrometheusName("kernel.silence_bytes"),
            "espk_kernel_silence_bytes");
  EXPECT_EQ(PrometheusName("speaker.0.late-drops"),
            "espk_speaker_0_late_drops");
}

TEST(MetricsRegistryTest, TextExpositionFormat) {
  MetricsRegistry registry;
  registry.GetCounter("kernel.syscalls", "total syscalls")->Increment(12);
  registry.GetGauge("lan.load", [] { return 0.5; }, "wire load");
  HistogramMetric* h = registry.GetHistogram("enc.ms", 0.0, 10.0, 10);
  h->Observe(1.0);
  h->Observe(3.0);
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# HELP espk_kernel_syscalls total syscalls\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE espk_kernel_syscalls counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("espk_kernel_syscalls 12\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE espk_lan_load gauge\n"), std::string::npos);
  EXPECT_NE(text.find("espk_lan_load 0.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE espk_enc_ms summary\n"), std::string::npos);
  EXPECT_NE(text.find("espk_enc_ms{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("espk_enc_ms_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("espk_enc_ms_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, TextExpositionCarriesSimTimestamps) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  registry.GetCounter("c")->Increment();
  sim.ScheduleAt(Milliseconds(1500), [] {});
  sim.Run();
  // Timestamp is the sim clock in milliseconds.
  EXPECT_NE(registry.TextExposition().find("espk_c 1 1500\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, TextExpositionEscapesHelpText) {
  MetricsRegistry registry;
  registry.GetCounter("c", "first line\nsecond line with a \\ backslash");
  std::string text = registry.TextExposition();
  // The newline and the backslash travel escaped, on one HELP line.
  EXPECT_NE(
      text.find(
          "# HELP espk_c first line\\nsecond line with a \\\\ backslash\n"),
      std::string::npos);
  // No raw newline leaked into the middle of the HELP text: every line of
  // the exposition starts with '#', the metric name, or is empty.
  EXPECT_EQ(text.find("second line with"),
            text.find("\\nsecond line with") + 2);
}

TEST(MetricsRegistryTest, GaugeReaderMayRegisterMetricsDuringExposition) {
  MetricsRegistry registry;
  // A pathological-but-legal gauge that lazily registers a companion metric
  // the first time it is read. The dump must not invalidate itself.
  registry.GetGauge("outer", [&registry] {
    registry.GetCounter("inner.lazy")->Increment();
    return 1.0;
  });
  std::string text = registry.TextExposition();
  EXPECT_NE(text.find("espk_outer 1\n"), std::string::npos);
  EXPECT_NE(text.find("espk_inner_lazy 1\n"), std::string::npos);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, ExpositionSurvivesReallocationMidDump) {
  // The re-entrancy contract, stressed: a gauge reader that registers
  // enough metrics mid-dump to force the metrics vector to reallocate.
  // The index loop in TextExposition must keep walking the grown vector
  // without touching freed storage, and every late registration must still
  // be dumped.
  MetricsRegistry registry;
  registry.GetGauge("trigger", [&registry] {
    for (int i = 0; i < 100; ++i) {
      registry.GetCounter("burst." + std::to_string(i))->Increment();
    }
    return 1.0;
  });
  std::string text = registry.TextExposition();
  EXPECT_EQ(registry.size(), 101u);
  EXPECT_NE(text.find("espk_trigger 1\n"), std::string::npos);
  EXPECT_NE(text.find("espk_burst_0 1\n"), std::string::npos);
  EXPECT_NE(text.find("espk_burst_99 1\n"), std::string::npos);
}

// --------------------------------------------------------------- PacketTracer

TEST(PacketTracerTest, RecordAndEventsFor) {
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.Record(1, 7, TraceStage::kEncode);
  tracer.Record(1, 7, TraceStage::kMulticastSend, 3);
  tracer.Record(1, 8, TraceStage::kEncode);
  auto events = tracer.EventsFor(1, 7);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].stage, TraceStage::kEncode);
  EXPECT_EQ(events[1].stage, TraceStage::kMulticastSend);
  EXPECT_EQ(events[1].node, 3u);
  EXPECT_EQ(tracer.recorded(), 3u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(PacketTracerTest, ByteAttributionUsesLastByteTime) {
  Simulation sim;
  PacketTracer tracer(&sim);
  // 100 bytes at t=0, 100 more at t=10ms; packet 0 covers bytes [0, 150).
  tracer.NoteBytes(1, TraceStage::kVadWrite, 100);
  sim.ScheduleAt(Milliseconds(10), [&tracer] {
    tracer.NoteBytes(1, TraceStage::kVadWrite, 100);
  });
  sim.Run();
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 150, /*seq=*/0);
  auto events = tracer.EventsFor(1, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, TraceStage::kVadWrite);
  // Byte 150 arrived in the second chunk, at 10 ms.
  EXPECT_EQ(events[0].at, Milliseconds(10));
  // Packet 1 covers bytes [150, 200): same chunk, same time.
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 200, /*seq=*/1);
  events = tracer.EventsFor(1, 1);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].at, Milliseconds(10));
  // The mark for byte 200 was consumed exactly; nothing left to attribute.
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 300, /*seq=*/2);
  EXPECT_TRUE(tracer.EventsFor(1, 2).empty());
}

TEST(PacketTracerTest, ResetStreamDropsPendingMarks) {
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.NoteBytes(1, TraceStage::kVadWrite, 100);
  tracer.Record(1, 0, TraceStage::kEncode);
  tracer.ResetStream(1);
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 100, /*seq=*/0);
  // The mark is gone, but the packet-addressed event survived.
  auto events = tracer.EventsFor(1, 0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, TraceStage::kEncode);
}

TEST(PacketTracerTest, AttributionGapAfterMidStreamReset) {
  // A config change mid-stream makes the rebroadcaster flush staged audio
  // and call ResetStream: both sides restart their cumulative byte offsets
  // from zero. The accepted cost is a GAP — packets cut from pre-reset
  // bytes never attribute — but never a misattribution: post-reset packets
  // must resolve to post-reset mark times only.
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.NoteBytes(1, TraceStage::kVadWrite, 200);  // Pre-reset, at t=0.
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 100, /*seq=*/0);
  ASSERT_EQ(tracer.EventsFor(1, 0).size(), 1u);

  tracer.ResetStream(1);  // Config change mid-stream.

  // Packet 1 covered pre-reset bytes (100, 200]; its marks died with the
  // reset, so it gets no event — the gap, not a guess.
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 200, /*seq=*/1);
  EXPECT_TRUE(tracer.EventsFor(1, 1).empty());

  sim.ScheduleAt(Milliseconds(20), [&tracer] {
    tracer.NoteBytes(1, TraceStage::kVadWrite, 150);  // Post-reset stream.
  });
  sim.Run();

  // Packet 2 is cut from the restarted stream: offsets are zero-based
  // again, and the event time is the post-reset mark, not t=0.
  tracer.AttributeBytes(1, TraceStage::kVadWrite, 150, /*seq=*/2);
  auto events = tracer.EventsFor(1, 2);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, TraceStage::kVadWrite);
  EXPECT_EQ(events[0].at, Milliseconds(20));
}

TEST(PacketTracerTest, RingBoundsAndCountsDrops) {
  Simulation sim;
  PacketTracer tracer(&sim, /*capacity=*/4);
  for (uint32_t seq = 0; seq < 10; ++seq) {
    tracer.Record(1, seq, TraceStage::kEncode);
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Oldest events went first.
  EXPECT_TRUE(tracer.EventsFor(1, 0).empty());
  EXPECT_EQ(tracer.EventsFor(1, 9).size(), 1u);
}

TEST(PacketTracerTest, StageLatencyAcrossListeners) {
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.Record(1, 0, TraceStage::kMulticastSend);
  sim.ScheduleAt(Milliseconds(2), [&tracer] {
    tracer.Record(1, 0, TraceStage::kSpeakerReceive, 2);
  });
  sim.ScheduleAt(Milliseconds(4), [&tracer] {
    tracer.Record(1, 0, TraceStage::kSpeakerReceive, 3);
  });
  sim.Run();
  RunningStats latency = tracer.StageLatencyMs(TraceStage::kMulticastSend,
                                               TraceStage::kSpeakerReceive);
  // One sample per listener.
  EXPECT_EQ(latency.count(), 2);
  EXPECT_DOUBLE_EQ(latency.min(), 2.0);
  EXPECT_DOUBLE_EQ(latency.max(), 4.0);
}

TEST(PacketTracerTest, SegmentRecordsQueueDropAsTerminalStage) {
  // A traced packet tail-dropped at the transmit queue must not silently
  // vanish from its lifecycle: the segment records kQueueDrop against the
  // sender's node id.
  Simulation sim;
  PacketTracer tracer(&sim);
  SegmentConfig cfg;
  cfg.bandwidth_bps = 8e3;      // 1000 bytes/sec: packets serialize slowly.
  cfg.tx_queue_limit = 300;     // ~One packet deep.
  EthernetSegment segment(&sim, cfg);
  segment.set_tracer(&tracer);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(100).ok());

  for (uint32_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(sender
                    ->SendMulticast(100, Bytes(200, 0x11),
                                    TraceTag{7, seq, PacketTraceId(7, seq),
                                             /*valid=*/true})
                    .ok());
  }
  EXPECT_GT(segment.stats().packets_dropped_queue, 0u);
  EXPECT_EQ(segment.stats().packets_dropped_queue + segment.stats().packets_sent,
            5u);
  // Every dropped seq carries exactly one terminal kQueueDrop event,
  // attributed to the sending station.
  size_t drop_events = 0;
  for (uint32_t seq = 0; seq < 5; ++seq) {
    for (const TraceEvent& ev : tracer.EventsFor(7, seq)) {
      ASSERT_EQ(ev.stage, TraceStage::kQueueDrop);
      EXPECT_EQ(ev.node, sender->node_id());
      ++drop_events;
    }
  }
  EXPECT_EQ(drop_events, segment.stats().packets_dropped_queue);
}

TEST(PacketTracerTest, SegmentRecordsLinkLossPerReceiver) {
  Simulation sim;
  PacketTracer tracer(&sim);
  SegmentConfig cfg;
  cfg.loss_probability = 1.0;  // Every delivery is lost.
  EthernetSegment segment(&sim, cfg);
  segment.set_tracer(&tracer);
  auto sender = segment.CreateNic();
  auto rx_a = segment.CreateNic();
  auto rx_b = segment.CreateNic();
  ASSERT_TRUE(rx_a->JoinGroup(100).ok());
  ASSERT_TRUE(rx_b->JoinGroup(100).ok());

  ASSERT_TRUE(sender
                  ->SendMulticast(100, Bytes(64, 0x22),
                                  TraceTag{7, 1, PacketTraceId(7, 1),
                                           /*valid=*/true})
                  .ok());
  sim.Run();
  EXPECT_EQ(segment.stats().deliveries_lost, 2u);
  // One kLinkLoss per losing receiver, attributed to that receiver's node.
  std::vector<TraceEvent> events = tracer.EventsFor(7, 1);
  ASSERT_EQ(events.size(), 2u);
  std::set<uint32_t> lost_nodes;
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.stage, TraceStage::kLinkLoss);
    lost_nodes.insert(ev.node);
  }
  EXPECT_EQ(lost_nodes,
            (std::set<uint32_t>{rx_a->node_id(), rx_b->node_id()}));
}

TEST(PacketTracerTest, UntaggedPacketsNeverTraceTerminalStages) {
  // Plain sends (no TraceTag) through a lossy, drop-prone segment must not
  // pollute the trace ring.
  Simulation sim;
  PacketTracer tracer(&sim);
  SegmentConfig cfg;
  cfg.loss_probability = 1.0;
  cfg.bandwidth_bps = 8e3;
  cfg.tx_queue_limit = 100;
  EthernetSegment segment(&sim, cfg);
  segment.set_tracer(&tracer);
  auto sender = segment.CreateNic();
  auto receiver = segment.CreateNic();
  ASSERT_TRUE(receiver->JoinGroup(100).ok());
  for (int i = 0; i < 5; ++i) {
    (void)sender->SendMulticast(100, Bytes(200, 0x33));
  }
  sim.Run();
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(PacketTracerTest, TracerMetricsExposeRingOverrun) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  PacketTracer tracer(&sim, /*capacity=*/4);
  RegisterTracerMetrics(&tracer, &registry);
  for (uint32_t seq = 0; seq < 10; ++seq) {
    tracer.Record(1, seq, TraceStage::kEncode);
  }
  ASSERT_GT(tracer.dropped(), 0u);  // Ring overran.
  const auto* recorded =
      static_cast<const Gauge*>(registry.Find("trace.events_recorded"));
  const auto* dropped =
      static_cast<const Gauge*>(registry.Find("trace.events_dropped"));
  const auto* size =
      static_cast<const Gauge*>(registry.Find("trace.ring_size"));
  ASSERT_NE(recorded, nullptr);
  ASSERT_NE(dropped, nullptr);
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(recorded->Value(), 10.0);
  EXPECT_EQ(dropped->Value(), 6.0);
  EXPECT_EQ(size->Value(), 4.0);
  // And the overrun shows in the exposition, not just the accessors.
  EXPECT_NE(registry.TextExposition().find("espk_trace_events_dropped 6"),
            std::string::npos);
}

TEST(PacketTracerTest, DumpNamesEveryStage) {
  Simulation sim;
  PacketTracer tracer(&sim);
  tracer.Record(1, 0, TraceStage::kEncode);
  tracer.Record(1, 0, TraceStage::kPlay, 2);
  std::string dump = tracer.Dump(1, 0);
  EXPECT_NE(dump.find("encode"), std::string::npos);
  EXPECT_NE(dump.find("play"), std::string::npos);
  EXPECT_NE(dump.find("node 2"), std::string::npos);
}

}  // namespace
}  // namespace espk
