// End-to-end tests of the full Ethernet Speaker pipeline: unmodified player
// application -> VAD slave -> kernel pump -> VAD master -> rebroadcaster
// (rate limit, selective compression, control packets) -> multicast LAN ->
// N Ethernet Speakers (sync engine, jitter buffer, playback).
#include <gtest/gtest.h>

#include "src/audio/analysis.h"
#include "src/core/system.h"

namespace espk {
namespace {

SpeakerOptions FastSpeaker(const std::string& name) {
  SpeakerOptions options;
  options.name = name;
  options.decode_speed_factor = 0.05;
  return options;
}

TEST(PipelineTest, OneProducerThreeSpeakersPlayTheSameAudio) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  EthernetSpeaker* s1 = *system.AddSpeaker(FastSpeaker("es1"), channel->group);
  EthernetSpeaker* s2 = *system.AddSpeaker(FastSpeaker("es2"), channel->group);
  EthernetSpeaker* s3 = *system.AddSpeaker(FastSpeaker("es3"), channel->group);

  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(1),
                               player_options)
                  .ok());
  system.sim()->RunUntil(Seconds(10));

  for (EthernetSpeaker* s : {s1, s2, s3}) {
    ASSERT_TRUE(s->ready()) << s->name();
    EXPECT_GT(s->stats().chunks_played, 50u) << s->name();
    EXPECT_EQ(s->stats().late_drops, 0u) << s->name();
    EXPECT_EQ(s->stats().bad_packets, 0u) << s->name();
    // Continuous playback: no audible gaps after the stream starts.
    EXPECT_EQ(s->output()->CountGaps(Milliseconds(5)), 0) << s->name();
  }
}

TEST(PipelineTest, SpeakersArePerfectlySynchronized) {
  // §3.2: with uniform multicast delivery, the wall-clock scheme keeps all
  // speakers sample-aligned.
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  (void)*system.AddSpeaker(FastSpeaker("es1"), channel->group);
  (void)*system.AddSpeaker(FastSpeaker("es2"), channel->group);
  (void)*system.AddSpeaker(FastSpeaker("es3"), channel->group);
  (void)*system.AddSpeaker(FastSpeaker("es4"), channel->group);

  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(2),
                               player_options)
                  .ok());
  system.sim()->RunUntil(Seconds(8));

  auto report = system.MeasureSync(Seconds(3), Seconds(1), Milliseconds(50));
  EXPECT_EQ(report.speaker_pairs, 6);
  EXPECT_EQ(report.max_skew_seconds, 0.0);
  EXPECT_GT(report.min_correlation, 0.99);
}

TEST(PipelineTest, LateJoinerStartsAfterNextControlPacket) {
  // §2.3: a speaker that tunes in mid-stream waits for a control packet,
  // then plays — no producer involvement.
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.control_interval = Seconds(1);
  Channel* channel = *system.CreateChannel("music", rb);
  (void)*system.AddSpeaker(FastSpeaker("early"), channel->group);
  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(3),
                               player_options)
                  .ok());
  system.sim()->RunUntil(Seconds(5));

  EthernetSpeaker* late =
      *system.AddSpeaker(FastSpeaker("late"), channel->group);
  EXPECT_FALSE(late->ready());
  system.sim()->RunUntil(Seconds(5) + Milliseconds(1100));
  EXPECT_TRUE(late->ready());  // Control packets come every second.
  EXPECT_GT(late->stats().waiting_drops, 0u);  // Data before control: dropped.

  system.sim()->RunUntil(Seconds(12));
  EXPECT_GT(late->stats().chunks_played, 20u);
  // Once playing, the late joiner is in sync with the early speaker.
  auto report = system.MeasureSync(Seconds(8), Seconds(1), Milliseconds(50));
  EXPECT_EQ(report.speaker_pairs, 1);
  EXPECT_EQ(report.max_skew_seconds, 0.0);
  EXPECT_GT(report.min_correlation, 0.99);
}

TEST(PipelineTest, PlayedAudioIsFaithfulToSource) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("tone");
  EthernetSpeaker* speaker =
      *system.AddSpeaker(FastSpeaker("es"), channel->group);
  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                               player_options)
                  .ok());
  system.sim()->RunUntil(Seconds(6));

  ASSERT_TRUE(speaker->ready());
  std::vector<float> played = speaker->output()->Render(Seconds(2), Seconds(2));
  // Compare against a reference 440 Hz tone (alignment-corrected).
  SineGenerator ref(440.0);
  std::vector<float> reference;
  ref.Generate(2 * 44100, 2, 44100, &reference);
  AlignmentResult alignment = FindAlignment(reference, played, 44100);
  EXPECT_GT(alignment.correlation, 0.98);
}

TEST(PipelineTest, SelectiveCompressionByBitrate) {
  // §2.2: CD-quality gets Vorbix; 64 kbps phone audio goes raw.
  EthernetSpeakerSystem system;
  Channel* cd_channel = *system.CreateChannel("music");
  Channel* phone_channel = *system.CreateChannel("announcements");

  PlayerAppOptions cd_opts;
  cd_opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(cd_channel,
                               std::make_unique<MusicLikeGenerator>(4), cd_opts)
                  .ok());
  PlayerAppOptions phone_opts;
  phone_opts.config = AudioConfig::PhoneQuality();
  phone_opts.chunk_frames = 800;
  ASSERT_TRUE(system
                  .StartPlayer(phone_channel,
                               std::make_unique<SpeechLikeGenerator>(5),
                               phone_opts)
                  .ok());
  system.sim()->RunUntil(Seconds(3));

  EXPECT_TRUE(cd_channel->rebroadcaster->compressing());
  EXPECT_FALSE(phone_channel->rebroadcaster->compressing());
}

TEST(PipelineTest, CompressionReducesWireLoadSubstantially) {
  // C1 shape: raw CD is ~1.4 Mbps payload; Vorbix cuts it by 2x or more.
  auto run = [](bool compress) {
    EthernetSpeakerSystem system;
    RebroadcasterOptions rb;
    rb.codec_override = compress ? CodecId::kVorbix : CodecId::kRaw;
    Channel* channel = *system.CreateChannel("music", rb);
    PlayerAppOptions opts;
    opts.config = AudioConfig::CdQuality();
    EXPECT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<MusicLikeGenerator>(6), opts)
                    .ok());
    system.sim()->RunUntil(Seconds(10));
    return channel->rebroadcaster->stats();
  };
  RebroadcasterStats raw = run(false);
  RebroadcasterStats vorbix = run(true);
  double raw_bps = static_cast<double>(raw.payload_bytes) * 8.0 / 10.0;
  double vorbix_bps = static_cast<double>(vorbix.payload_bytes) * 8.0 / 10.0;
  EXPECT_NEAR(raw_bps, 1.41e6, 0.15e6);  // "around 1.3Mbps" §2.2.
  EXPECT_LT(vorbix_bps, raw_bps / 2.0);
}

TEST(PipelineTest, RateLimiterKeepsProducerAtRealTime) {
  // §3.1: the producer must not outrun playback even though the VAD allows
  // it. Over 10 s, bytes read from the VAD ~= 10 s of audio.
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(7), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(10));
  const RebroadcasterStats& stats = channel->rebroadcaster->stats();
  double seconds_sent =
      static_cast<double>(stats.pcm_bytes_in) /
      static_cast<double>(AudioConfig::CdQuality().bytes_per_second());
  // Bounded lead: real time plus the limiter lead and staging buffer
  // (~1.1 s), never the whole stream at wire speed.
  EXPECT_NEAR(seconds_sent, 10.0, 1.6);
  EXPECT_GT(stats.rate_limit_sleeps, 0u);
}

TEST(PipelineTest, WithoutRateLimiterTheSongBlastsAndSpeakersLoseMost) {
  // §3.1's failure mode: a 60-second "song" is multicast at drain speed;
  // the speaker's buffer overflows and only the first seconds survive.
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.rate_limiter_enabled = false;
  Channel* channel = *system.CreateChannel("music", rb);
  SpeakerOptions speaker_options = FastSpeaker("es");
  speaker_options.jitter_buffer_bytes = 512 * 1024;
  EthernetSpeaker* speaker =
      *system.AddSpeaker(speaker_options, channel->group);

  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  opts.total_frames = 60 * 44100;  // A one-minute song.
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(8), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(70));

  const RebroadcasterStats& pstats = channel->rebroadcaster->stats();
  // The whole song left the producer long before 60 s of real time.
  EXPECT_EQ(pstats.pcm_bytes_in, 60ull * 176400ull);
  EXPECT_EQ(pstats.rate_limit_sleeps, 0u);
  // The speaker dropped most of it on the floor.
  EXPECT_GT(speaker->stats().overflow_drops, 0u);
  double played_seconds =
      static_cast<double>(speaker->stats().chunks_played) * 4096.0 / 44100.0;
  EXPECT_LT(played_seconds, 20.0);  // "only the first few seconds".
}

TEST(PipelineTest, PacketLossCausesGapsButPlaybackContinues) {
  SystemOptions sys_options;
  sys_options.lan.loss_probability = 0.05;
  EthernetSpeakerSystem system(sys_options);
  Channel* channel = *system.CreateChannel("music");
  EthernetSpeaker* speaker =
      *system.AddSpeaker(FastSpeaker("es"), channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(9), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(20));
  ASSERT_TRUE(speaker->ready());
  // Lost packets leave gaps, but the stream keeps going: played chunks plus
  // network losses account for everything sent.
  EXPECT_GT(speaker->stats().chunks_played, 150u);
  EXPECT_GT(speaker->output()->CountGaps(Milliseconds(10)), 0);
  EXPECT_EQ(speaker->stats().late_drops, 0u);
}

TEST(PipelineTest, JitterWithinEpsilonStaysInaudible) {
  // Moderate delivery jitter is absorbed by the playout buffer + epsilon.
  SystemOptions sys_options;
  sys_options.lan.jitter = Milliseconds(5);
  EthernetSpeakerSystem system(sys_options);
  Channel* channel = *system.CreateChannel("music");
  EthernetSpeaker* s1 = *system.AddSpeaker(FastSpeaker("es1"), channel->group);
  EthernetSpeaker* s2 = *system.AddSpeaker(FastSpeaker("es2"), channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(10), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(10));
  EXPECT_EQ(s1->stats().late_drops, 0u);
  EXPECT_EQ(s2->stats().late_drops, 0u);
  // Skew between speakers is bounded by the clock-offset error the jitter
  // induces (control packets arrive at different times), small vs epsilon.
  // Measure within one control-packet epoch: each control packet re-adopts
  // the producer clock with a fresh jitter draw, so offsets drift between
  // epochs (a property of the paper's latest-wins clock scheme).
  auto report = system.MeasureSync(Seconds(4) + Milliseconds(100),
                                   Milliseconds(700), Milliseconds(50));
  EXPECT_EQ(report.speaker_pairs, 1);
  EXPECT_LE(report.max_skew_seconds, 0.012);
}

TEST(PipelineTest, SourceGapResyncsDeadlines) {
  // The player finishes a song; a new one starts 3 s later. The speaker
  // must resume cleanly (deadline timeline restarts).
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  EthernetSpeaker* speaker =
      *system.AddSpeaker(FastSpeaker("es"), channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  opts.total_frames = 3 * 44100;
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(11), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(6));
  uint64_t played_after_first = speaker->stats().chunks_played;
  EXPECT_GT(played_after_first, 20u);

  // Second song on the same channel.
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(12), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(12));
  EXPECT_GT(speaker->stats().chunks_played, played_after_first + 20u);
  EXPECT_EQ(speaker->stats().late_drops, 0u);
}

TEST(PipelineTest, SpeakerSwitchesChannels) {
  EthernetSpeakerSystem system;
  Channel* music = *system.CreateChannel("music");
  Channel* voice = *system.CreateChannel("voice");
  PlayerAppOptions music_opts;
  music_opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(music, std::make_unique<MusicLikeGenerator>(13),
                               music_opts)
                  .ok());
  PlayerAppOptions voice_opts;
  voice_opts.config = AudioConfig::PhoneQuality();
  voice_opts.chunk_frames = 800;
  ASSERT_TRUE(system
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(14),
                               voice_opts)
                  .ok());

  EthernetSpeaker* speaker = *system.AddSpeaker(FastSpeaker("es"), music->group);
  system.sim()->RunUntil(Seconds(5));
  ASSERT_TRUE(speaker->ready());
  EXPECT_EQ(speaker->config()->sample_rate, 44100);
  uint64_t music_chunks = speaker->stats().chunks_played;
  EXPECT_GT(music_chunks, 10u);

  // Tune to the voice channel ("clients can tune in or out of a
  // transmission without the server's knowledge or cooperation", §6).
  ASSERT_TRUE(speaker->Tune(voice->group).ok());
  EXPECT_FALSE(speaker->ready());  // Must wait for a control packet again.
  system.sim()->RunUntil(Seconds(10));
  ASSERT_TRUE(speaker->ready());
  EXPECT_EQ(speaker->config()->sample_rate, 8000);
  EXPECT_GT(speaker->stats().chunks_played, music_chunks);
}

TEST(PipelineTest, TwoChannelsDisjointAndOverlappingSubscribers) {
  EthernetSpeakerSystem system;
  Channel* music = *system.CreateChannel("music");
  Channel* voice = *system.CreateChannel("voice");
  // es-0 hears music only, es-1 voice only, es-2 both at once.
  EthernetSpeaker* s0 = *system.AddSpeaker(FastSpeaker("es0"), music->group);
  EthernetSpeaker* s1 = *system.AddSpeaker(FastSpeaker("es1"), voice->group);
  EthernetSpeaker* s2 = *system.AddSpeaker(FastSpeaker("es2"), music->group);
  ASSERT_TRUE(system.SubscribeSpeaker(2, "voice").ok());

  PlayerAppOptions music_opts;
  music_opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(music, std::make_unique<MusicLikeGenerator>(21),
                               music_opts)
                  .ok());
  PlayerAppOptions voice_opts;
  voice_opts.config = AudioConfig::PhoneQuality();
  voice_opts.chunk_frames = 800;
  ASSERT_TRUE(system
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(22),
                               voice_opts)
                  .ok());
  system.RunUntil(Seconds(5));

  // Disjoint speakers each hear exactly their own stream.
  ASSERT_NE(s0->session(music->group), nullptr);
  EXPECT_GT(s0->session(music->group)->stats().chunks_played, 10u);
  EXPECT_EQ(s0->session(voice->group), nullptr);
  ASSERT_NE(s1->session(voice->group), nullptr);
  EXPECT_GE(s1->session(voice->group)->stats().chunks_played, 10u);
  EXPECT_EQ(s1->session(music->group), nullptr);
  // The overlapping speaker decodes and plays both streams concurrently on
  // its one shared decode CPU.
  ASSERT_NE(s2->session(music->group), nullptr);
  ASSERT_NE(s2->session(voice->group), nullptr);
  EXPECT_GT(s2->session(music->group)->stats().chunks_played, 10u);
  EXPECT_GE(s2->session(voice->group)->stats().chunks_played, 10u);
  EXPECT_EQ(s2->stats().late_drops, 0u);

  // The directory's who-hears-what view reflects all three bindings.
  system.RefreshDirectory();
  std::string view = system.directory()->RenderWhoHearsWhat();
  EXPECT_NE(view.find("music"), std::string::npos);
  EXPECT_NE(view.find("voice"), std::string::npos);
  EXPECT_NE(view.find("es-2"), std::string::npos);
}

TEST(PipelineTest, RuntimeSubscribeAndUnsubscribeByStreamName) {
  EthernetSpeakerSystem system;
  Channel* music = *system.CreateChannel("music");
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(music, std::make_unique<MusicLikeGenerator>(23),
                               opts)
                  .ok());
  // Born unsubscribed: hears nothing.
  EthernetSpeaker* speaker = *system.AddSpeaker(FastSpeaker("es"));
  system.RunUntil(Seconds(2));
  EXPECT_TRUE(speaker->subscriptions().empty());
  EXPECT_EQ(speaker->stats().chunks_played, 0u);

  // Unknown stream names and out-of-range speaker indices are rejected.
  EXPECT_FALSE(system.SubscribeSpeaker(0, "no-such-stream").ok());
  EXPECT_FALSE(system.SubscribeSpeaker(7, "music").ok());

  ASSERT_TRUE(system.SubscribeSpeaker(0, "music").ok());
  system.RunUntil(Seconds(6));
  uint64_t played = speaker->stats().chunks_played;
  EXPECT_GT(played, 10u);

  ASSERT_TRUE(system.UnsubscribeSpeaker(0, "music").ok());
  system.RunUntil(Seconds(10));
  EXPECT_EQ(speaker->stats().chunks_played, played);
  EXPECT_FALSE(speaker->ready());
}

TEST(PipelineTest, EightSimultaneousStreams) {
  // Figure 4's setup: eight separate CD-quality stereo streams through one
  // producer machine, all compressed, all played correctly.
  EthernetSpeakerSystem system;
  std::vector<EthernetSpeaker*> speakers;
  for (int i = 0; i < 8; ++i) {
    Channel* channel = *system.CreateChannel("stream" + std::to_string(i));
    PlayerAppOptions opts;
    opts.config = AudioConfig::CdQuality();
    ASSERT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<MusicLikeGenerator>(
                                     100 + static_cast<uint64_t>(i)),
                                 opts)
                    .ok());
    speakers.push_back(
        *system.AddSpeaker(FastSpeaker("es" + std::to_string(i)),
                           channel->group));
  }
  system.sim()->RunUntil(Seconds(5));
  for (EthernetSpeaker* s : speakers) {
    ASSERT_TRUE(s->ready()) << s->name();
    EXPECT_GT(s->stats().chunks_played, 30u) << s->name();
    EXPECT_EQ(s->stats().late_drops, 0u) << s->name();
  }
}

TEST(PipelineTest, PacketTraceCoversWholeLifecycle) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  (void)*system.AddSpeaker(FastSpeaker("es"), channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(16), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(5));

  // A mid-stream packet that has long since left the playout pipeline.
  const uint32_t seq = 20;
  auto events = system.tracer()->EventsFor(channel->stream_id, seq);
  std::vector<TraceStage> stages;
  for (const TraceEvent& event : events) {
    stages.push_back(event.stage);
  }
  const std::vector<TraceStage> expected = {
      TraceStage::kVadWrite,      TraceStage::kRebroadcastRead,
      TraceStage::kEncode,        TraceStage::kMulticastSend,
      TraceStage::kSpeakerReceive, TraceStage::kDecodeDone,
      TraceStage::kPlay};
  ASSERT_EQ(stages, expected)
      << system.tracer()->Dump(channel->stream_id, seq);
  // The lifecycle moves forward in simulated time, stage by stage.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at)
        << TraceStageName(events[i].stage);
  }
  // Send-to-play latency across the ring sits inside the playout window:
  // bounded by playout_delay plus the rate limiter's lead (the initial
  // burst is sent early and waits in the jitter buffer).
  RunningStats e2e = system.tracer()->StageLatencyMs(
      TraceStage::kMulticastSend, TraceStage::kPlay);
  EXPECT_GT(e2e.count(), 10);
  EXPECT_GT(e2e.mean(), 0.0);
  EXPECT_LE(e2e.max(), 500.0);  // playout_delay + rate_limiter_lead, in ms.
}

TEST(PipelineTest, OverloadedSegmentTracesQueueDropsAndFiresQueueDropSlo) {
  // A raw CD stream (~1.4 Mbps) through a 1 Mbps segment with a shallow
  // transmit queue: the excess has nowhere to go, so packets must tail-drop
  // — and every drop must surface twice, as a kQueueDrop terminal trace
  // stage and as the lan.queue_drop_rate SLO firing.
  SystemOptions sys_options;
  sys_options.lan.bandwidth_bps = 1e6;
  sys_options.lan.tx_queue_limit = 64 * 1024;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  (void)*system.AddSpeaker(FastSpeaker("es"), channel->group);
  // The steady-state overload sheds ~3 large packets per second; set the
  // SLO threshold below that so the firing state is sustained, not just the
  // initial burst.
  EthernetSpeakerSystem::HealthRuleDefaults rules;
  rules.queue_drop_rate_per_sec = 1.0;
  HealthMonitor* health = system.EnableHealthMonitoring({}, rules);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(17), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(10));

  ASSERT_GT(system.lan()->stats().packets_dropped_queue, 0u);
  // Terminal kQueueDrop stages appear in the trace ring, attributed to the
  // producer's station.
  size_t queue_drop_events = 0;
  for (const TraceEvent& event : system.tracer()->events()) {
    if (event.stage == TraceStage::kQueueDrop) {
      EXPECT_EQ(event.stream_id, channel->stream_id);
      ++queue_drop_events;
    }
  }
  EXPECT_GT(queue_drop_events, 0u);
  // The sustained drop rate held above threshold long enough to fire.
  EXPECT_EQ(health->engine()->StateOf("lan.queue_drop_rate"),
            AlertState::kFiring);
  EXPECT_GE(health->engine()->fired_total(), 1u);
}

TEST(PipelineTest, LossySegmentTracesLinkLossEndToEnd) {
  // Heavy random loss: some traced packets must terminate in kLinkLoss at
  // the speaker's station instead of reaching kPlay.
  SystemOptions sys_options;
  sys_options.lan.loss_probability = 0.25;
  EthernetSpeakerSystem system(sys_options);
  Channel* channel = *system.CreateChannel("music");
  EthernetSpeaker* speaker =
      *system.AddSpeaker(FastSpeaker("es"), channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  ASSERT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(18), opts)
                  .ok());
  system.sim()->RunUntil(Seconds(10));

  ASSERT_GT(system.lan()->stats().deliveries_lost, 0u);
  SimNic* speaker_nic = system.NicOf(speaker);
  ASSERT_NE(speaker_nic, nullptr);
  size_t link_loss_events = 0;
  for (const TraceEvent& event : system.tracer()->events()) {
    if (event.stage == TraceStage::kLinkLoss) {
      EXPECT_EQ(event.node, speaker_nic->node_id());
      ++link_loss_events;
    }
  }
  EXPECT_GT(link_loss_events, 0u);
  // Playback survives the loss (the §2.2 graceful-degradation story):
  // roughly three quarters of the ~108 chunks still play.
  EXPECT_GT(speaker->stats().chunks_played, 50u);
}

TEST(PipelineTest, SlowDecoderWithLargeBuffersSkips) {
  // §3.4: large buffers + slow CPU stall the pipeline ("time delays add up,
  // resulting in skipped audio"); small buffers fix it.
  auto run = [](int64_t packet_frames) {
    EthernetSpeakerSystem system;
    RebroadcasterOptions rb;
    rb.packet_frames = packet_frames;
    rb.playout_delay = Milliseconds(200);
    Channel* channel = *system.CreateChannel("music", rb);
    SpeakerOptions slow;
    slow.name = "eon4000";
    slow.decode_speed_factor = 0.8;  // A 233 MHz Geode, nearly maxed out.
    EthernetSpeaker* speaker = *system.AddSpeaker(slow, channel->group);
    PlayerAppOptions opts;
    opts.config = AudioConfig::CdQuality();
    EXPECT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<MusicLikeGenerator>(15),
                                 opts)
                    .ok());
    system.sim()->RunUntil(Seconds(15));
    return speaker->stats();
  };
  SpeakerStats small_buffers = run(2048);   // ~46 ms chunks.
  SpeakerStats large_buffers = run(65536);  // ~1.5 s chunks.
  EXPECT_EQ(small_buffers.late_drops, 0u);
  EXPECT_GT(large_buffers.late_drops, 0u);
}

}  // namespace
}  // namespace espk
