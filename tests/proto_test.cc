#include <gtest/gtest.h>

#include "src/base/crc32.h"
#include "src/base/prng.h"
#include "src/proto/wire.h"

namespace espk {
namespace {

ControlPacket MakeControl() {
  ControlPacket p;
  p.stream_id = 3;
  p.control_seq = 17;
  p.producer_clock = Seconds(42) + Nanoseconds(13);
  p.config = AudioConfig::CdQuality();
  p.codec = CodecId::kVorbix;
  p.quality = 10;
  return p;
}

DataPacket MakeData() {
  DataPacket p;
  p.stream_id = 3;
  p.seq = 999;
  p.play_deadline = Seconds(43);
  p.frame_count = 4096;
  p.payload = {1, 2, 3, 4, 5, 6, 7, 8};
  return p;
}

AnnouncePacket MakeAnnounce() {
  AnnouncePacket p;
  p.producer_clock = Seconds(7);
  AnnounceEntry music;
  music.stream_id = 1;
  music.group = kFirstChannelGroup;
  music.name = "campus radio";
  music.config = AudioConfig::CdQuality();
  music.codec = CodecId::kVorbix;
  AnnounceEntry pa;
  pa.stream_id = 2;
  pa.group = kFirstChannelGroup + 1;
  pa.name = "announcements";
  pa.config = AudioConfig::PhoneQuality();
  pa.codec = CodecId::kRaw;
  p.entries = {music, pa};
  return p;
}

TEST(WireTest, ControlRoundTrip) {
  ControlPacket p = MakeControl();
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_TRUE(std::holds_alternative<ControlPacket>(parsed->packet));
  EXPECT_EQ(std::get<ControlPacket>(parsed->packet), p);
  EXPECT_TRUE(parsed->auth.empty());
}

TEST(WireTest, DataRoundTrip) {
  DataPacket p = MakeData();
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<DataPacket>(parsed->packet), p);
}

TEST(WireTest, AnnounceRoundTrip) {
  AnnouncePacket p = MakeAnnounce();
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(std::get<AnnouncePacket>(parsed->packet), p);
}

TEST(WireTest, EmptyAnnounceIsValid) {
  AnnouncePacket p;
  p.producer_clock = 1;
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(std::get<AnnouncePacket>(parsed->packet).entries.empty());
}

TEST(WireTest, CrcCatchesEverySingleBitFlip) {
  Bytes wire = SerializePacket(MakeData());
  for (size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes corrupt = wire;
      corrupt[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_FALSE(ParsePacket(corrupt).ok())
          << "flip at byte " << byte << " bit " << bit << " undetected";
    }
  }
}

TEST(WireTest, TruncationRejected) {
  Bytes wire = SerializePacket(MakeControl());
  for (size_t len = 0; len < wire.size(); ++len) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(len));
    EXPECT_FALSE(ParsePacket(truncated).ok()) << "length " << len;
  }
}

TEST(WireTest, RandomGarbageRejected) {
  Prng prng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes garbage(prng.NextBelow(200) + 1);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(prng.NextU64());
    }
    EXPECT_FALSE(ParsePacket(garbage).ok());
  }
}

TEST(WireTest, AuthTrailerRoundTrip) {
  DataPacket p = MakeData();
  Bytes auth = {0xAA, 0xBB, 0xCC, 0xDD};
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->auth, auth);
  EXPECT_EQ(std::get<DataPacket>(parsed->packet), p);
}

TEST(WireTest, SignedRegionMatchesParserView) {
  // What the producer signs must be byte-identical to what the speaker
  // extracts, or verification can never succeed.
  DataPacket p = MakeData();
  Bytes region_at_signing = SignedRegion(p);
  Bytes auth = {1, 2, 3};
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(p, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->signed_region, region_at_signing);
}

TEST(WireTest, TamperingWithSignedFieldChangesSignedRegion) {
  DataPacket p = MakeData();
  Bytes before = SignedRegion(p);
  p.play_deadline += 1;
  EXPECT_NE(SignedRegion(p), before);
}

TEST(WireTest, TrailingBytesRejected) {
  // Append garbage then fix up the CRC: structure check must still fail.
  DataPacket p = MakeData();
  Bytes wire = SerializePacket(p);
  Bytes inner(wire.begin(), wire.end() - 4);
  inner.push_back(0x77);  // Trailing junk inside the CRC'd region.
  uint32_t crc = Crc32(inner);
  for (int i = 0; i < 4; ++i) {
    inner.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_FALSE(ParsePacket(inner).ok());
}

TEST(WireTest, UnknownTypeRejected) {
  DataPacket p = MakeData();
  Bytes wire = SerializePacket(p);
  Bytes inner(wire.begin(), wire.end() - 4);
  inner[3] = 99;  // Type byte.
  uint32_t crc = Crc32(inner);
  for (int i = 0; i < 4; ++i) {
    inner.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_FALSE(ParsePacket(inner).ok());
}

TEST(WireTest, WrongVersionRejected) {
  DataPacket p = MakeData();
  Bytes wire = SerializePacket(p);
  Bytes inner(wire.begin(), wire.end() - 4);
  inner[2] = kWireVersion + 1;
  uint32_t crc = Crc32(inner);
  for (int i = 0; i < 4; ++i) {
    inner.push_back(static_cast<uint8_t>((crc >> (8 * i)) & 0xff));
  }
  EXPECT_FALSE(ParsePacket(inner).ok());
}

TEST(WireTest, TypeOfReportsCorrectly) {
  EXPECT_EQ(TypeOf(Packet(MakeControl())), PacketType::kControl);
  EXPECT_EQ(TypeOf(Packet(MakeData())), PacketType::kData);
  EXPECT_EQ(TypeOf(Packet(MakeAnnounce())), PacketType::kAnnounce);
}

TEST(WireTest, DataPacketOverheadIsSmall) {
  // Wire overhead (envelope + data header + CRC) over the payload must stay
  // small — the paper's bandwidth numbers assume payload dominates.
  DataPacket p = MakeData();
  p.payload = Bytes(16384, 0x42);
  Bytes wire = SerializePacket(p);
  EXPECT_LE(wire.size() - p.payload.size(), 40u);
}

}  // namespace
}  // namespace espk
