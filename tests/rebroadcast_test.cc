// Unit tests for the producer side: the §3.1 rate limiter, the WAN framing,
// the kernel streamer, and rebroadcaster behaviours not covered by the
// end-to-end pipeline tests.
#include <gtest/gtest.h>

#include "src/core/system.h"
#include "src/lan/segment.h"
#include "src/rebroadcast/kernel_streamer.h"
#include "src/rebroadcast/rate_limiter.h"
#include "src/rebroadcast/wan.h"

namespace espk {
namespace {

// ------------------------------------------------------------ RateLimiter --

TEST(RateLimiterTest, AllowsUpToLeadThenPaces) {
  RateLimiter limiter(Milliseconds(500));
  limiter.Reset(0);
  // First 500 ms of audio may go immediately.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(limiter.EarliestSendTime(0, Milliseconds(100)), 0) << i;
    limiter.Advance(Milliseconds(100));
  }
  // The sixth chunk must wait until real time catches up.
  SimTime earliest = limiter.EarliestSendTime(0, Milliseconds(100));
  EXPECT_EQ(earliest, 0);  // Position 500ms - lead 500ms = t 0... boundary.
  limiter.Advance(Milliseconds(100));
  earliest = limiter.EarliestSendTime(0, Milliseconds(100));
  EXPECT_EQ(earliest, Milliseconds(100));
}

TEST(RateLimiterTest, SteadyStateMatchesRealTime) {
  RateLimiter limiter(Milliseconds(200));
  limiter.Reset(0);
  // Send 10 s of audio as fast as allowed; the last chunk's send time must
  // be ~10 s - lead.
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    now = std::max(now, limiter.EarliestSendTime(now, Milliseconds(100)));
    limiter.Advance(Milliseconds(100));
  }
  EXPECT_EQ(now, Seconds(10) - Milliseconds(200) - Milliseconds(100));
}

TEST(RateLimiterTest, NotStartedAllowsEverything) {
  RateLimiter limiter(Milliseconds(100));
  EXPECT_FALSE(limiter.started());
  EXPECT_EQ(limiter.EarliestSendTime(Seconds(5), Seconds(100)), Seconds(5));
}

TEST(RateLimiterTest, CatchUpAfterIdleGap) {
  RateLimiter limiter(Milliseconds(100));
  limiter.Reset(0);
  // 1 s of audio sent, then the source goes silent for 10 s.
  for (int i = 0; i < 10; ++i) {
    limiter.Advance(Milliseconds(100));
  }
  // Without CatchUp, the limiter thinks we are 9 s behind and would let
  // 9 s of audio through at wire speed.
  limiter.CatchUp(Seconds(10));
  SimTime earliest = limiter.EarliestSendTime(Seconds(10), Milliseconds(100));
  EXPECT_EQ(earliest, Seconds(10));
  limiter.Advance(Milliseconds(100));
  // The next chunk is paced again, not burst.
  earliest = limiter.EarliestSendTime(Seconds(10), Milliseconds(100));
  EXPECT_EQ(earliest, Seconds(10));
  limiter.Advance(Milliseconds(100));
  earliest = limiter.EarliestSendTime(Seconds(10), Milliseconds(100));
  EXPECT_EQ(earliest, Seconds(10) + Milliseconds(100));
}

TEST(RateLimiterTest, CatchUpIsNoOpWhenAhead) {
  RateLimiter limiter(Milliseconds(100));
  limiter.Reset(0);
  limiter.Advance(Seconds(1));  // 1 s of audio sent instantly (within lead).
  limiter.CatchUp(Milliseconds(10));  // Real time has NOT overtaken.
  // Still throttled: position 1 s, now 10 ms.
  SimTime earliest =
      limiter.EarliestSendTime(Milliseconds(10), Milliseconds(100));
  EXPECT_EQ(earliest, Milliseconds(900));
}

// -------------------------------------------------------------- WanChunk --

TEST(WanChunkTest, SerializationRoundTrip) {
  WanChunk chunk;
  chunk.seq = 77;
  chunk.pcm = {1, 2, 3, 4};
  Result<WanChunk> back = WanChunk::Deserialize(chunk.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->seq, 77u);
  EXPECT_EQ(back->pcm, chunk.pcm);
}

TEST(WanChunkTest, GarbageRejected) {
  EXPECT_FALSE(WanChunk::Deserialize({}).ok());
  EXPECT_FALSE(WanChunk::Deserialize({1, 2}).ok());
}

TEST(WanServerTest, NoListenersNoTraffic) {
  Simulation sim;
  EthernetSegment wan(&sim, SegmentConfig{});
  auto nic = wan.CreateNic();
  WanAudioServer server(&sim, nic.get(), AudioConfig::PhoneQuality(),
                        std::make_unique<SineGenerator>(440.0));
  server.Start();
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(server.chunks_sent(), 0u);
  EXPECT_EQ(wan.stats().packets_offered, 0u);
}

TEST(WanServerTest, PerListenerUnicastCopies) {
  Simulation sim;
  EthernetSegment wan(&sim, SegmentConfig{});
  auto server_nic = wan.CreateNic();
  auto l1 = wan.CreateNic();
  auto l2 = wan.CreateNic();
  WanAudioServer server(&sim, server_nic.get(), AudioConfig::PhoneQuality(),
                        std::make_unique<SineGenerator>(440.0));
  server.AddListener(l1->node_id());
  server.AddListener(l2->node_id());
  server.Start();
  sim.RunUntil(Seconds(2));
  server.Stop();
  sim.RunFor(Milliseconds(10));  // Drain in-flight deliveries.
  EXPECT_EQ(l1->packets_received(), l2->packets_received());
  EXPECT_GT(l1->packets_received(), 10u);
  EXPECT_EQ(server.chunks_sent(), 2 * l1->packets_received());
}

// ---------------------------------------------------------- Rebroadcaster --

TEST(RebroadcasterTest, DoubleStartFails) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  EXPECT_FALSE(channel->rebroadcaster->Start().ok());  // Already started.
}

TEST(RebroadcasterTest, OpeningMissingMasterFails) {
  Simulation sim;
  SimKernel kernel(&sim);
  EthernetSegment lan(&sim, SegmentConfig{});
  auto nic = lan.CreateNic();
  Rebroadcaster rb(&kernel, 1, "/dev/vadm99", nic.get(),
                   RebroadcasterOptions{});
  EXPECT_FALSE(rb.Start().ok());
}

TEST(RebroadcasterTest, ControlPacketsKeepComingWithoutAudio) {
  // §2.3: control packets are periodic so late joiners can always sync,
  // even during silence in the source.
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.control_interval = Milliseconds(500);
  Channel* channel = *system.CreateChannel("music", rb);
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  opts.total_frames = 800;  // A tenth of a second, then silence.
  (void)*system.StartPlayer(channel,
                            std::make_unique<SineGenerator>(440.0), opts);
  system.sim()->RunUntil(Seconds(10));
  // ~2 control packets per second for 10 s, despite ~0.1 s of audio.
  EXPECT_GE(channel->rebroadcaster->stats().control_packets, 18u);
  EXPECT_LE(channel->rebroadcaster->stats().data_packets, 1u);
}

TEST(RebroadcasterTest, ConfigChangeMidStreamBumpsControlSeq) {
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  PlayerAppOptions first;
  first.config = AudioConfig::PhoneQuality();
  first.chunk_frames = 800;
  first.total_frames = 8000;
  (void)*system.StartPlayer(channel, std::make_unique<SineGenerator>(440.0),
                            first);
  system.sim()->RunUntil(Seconds(3));
  EXPECT_EQ(channel->rebroadcaster->stats().config_changes, 1u);
  EXPECT_EQ(channel->rebroadcaster->config().sample_rate, 8000);

  PlayerAppOptions second;
  second.config = AudioConfig::CdQuality();
  (void)*system.StartPlayer(channel,
                            std::make_unique<MusicLikeGenerator>(1), second);
  system.sim()->RunUntil(Seconds(6));
  EXPECT_EQ(channel->rebroadcaster->stats().config_changes, 2u);
  EXPECT_EQ(channel->rebroadcaster->config().sample_rate, 44100);
  EXPECT_TRUE(channel->rebroadcaster->compressing());
}

TEST(RebroadcasterTest, EncodeCpuIsTracked) {
  EthernetSpeakerSystem system;
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kVorbix;
  Channel* channel = *system.CreateChannel("music", rb);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  (void)*system.StartPlayer(channel, std::make_unique<MusicLikeGenerator>(2),
                            opts);
  system.sim()->RunUntil(Seconds(3));
  EXPECT_GT(channel->rebroadcaster->encode_cpu_seconds(), 0.0);
}

// --------------------------------------------------------- KernelStreamer --

TEST(KernelStreamerTest, StreamsRawBlocksWithDeadlines) {
  Simulation sim;
  SimKernel kernel(&sim);
  EthernetSegment lan(&sim, SegmentConfig{});
  auto producer_nic = lan.CreateNic();
  auto listener_nic = lan.CreateNic();
  (void)listener_nic->JoinGroup(kFirstChannelGroup);
  uint64_t data_seen = 0;
  uint64_t control_seen = 0;
  SimTime last_deadline = -1;
  bool deadlines_monotone = true;
  listener_nic->SetReceiveHandler([&](const Datagram& d) {
    Result<ParsedPacket> parsed = ParsePacket(d.payload);
    if (!parsed.ok()) {
      return;
    }
    if (const auto* data = std::get_if<DataPacket>(&parsed->packet)) {
      ++data_seen;
      deadlines_monotone =
          deadlines_monotone && data->play_deadline > last_deadline;
      last_deadline = data->play_deadline;
    } else if (std::holds_alternative<ControlPacket>(parsed->packet)) {
      ++control_seen;
    }
  });

  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  KernelStreamer streamer(&kernel, vad, producer_nic.get(),
                          KernelStreamerOptions{});
  // A live source paced at real time (in-kernel streaming has no rate
  // limiter of its own — an unpaced writer would blast at wire speed).
  AudioConfig config = AudioConfig::PhoneQuality();
  int fd = *kernel.Open(10, "/dev/vads0");
  ByteWriter w;
  config.Serialize(&w);
  Bytes cfg = w.TakeBytes();
  ASSERT_TRUE(kernel.Ioctl(10, fd, IoctlCmd::kAudioSetInfo, &cfg).ok());
  SineGenerator gen(440.0);
  PeriodicTask writer(&sim, Milliseconds(100), [&](SimTime) {
    kernel.Write(10, fd, gen.GenerateBytes(800, config),
                 [](Result<size_t>) {});
  });
  writer.Start();
  sim.RunUntil(Seconds(5));
  writer.Stop();
  sim.RunFor(Milliseconds(50));  // Drain in-flight deliveries and pump.

  EXPECT_GT(data_seen, 20u);
  EXPECT_GE(control_seen, 5u);
  EXPECT_TRUE(deadlines_monotone);
  EXPECT_EQ(streamer.data_packets(), data_seen);
}

// ------------------------------------------------------------- PlayerApp --

TEST(PlayerAppTest, FiniteSongFinishesAndReleasesDevice) {
  Simulation sim;
  SimKernel kernel(&sim);
  [[maybe_unused]] auto vad = *CreateVadPair(&kernel, 0);
  PlayerAppOptions opts;
  opts.config = AudioConfig::PhoneQuality();
  opts.chunk_frames = 800;
  opts.total_frames = 4000;
  PlayerApp player(&kernel, 10, "/dev/vads0",
                   std::make_unique<SineGenerator>(440.0), opts);
  bool finished = false;
  player.set_on_finished([&] { finished = true; });
  ASSERT_TRUE(player.Start().ok());
  sim.RunUntil(Seconds(5));
  EXPECT_TRUE(finished);
  EXPECT_TRUE(player.finished());
  EXPECT_EQ(player.frames_written(), 4000);
  // Device released: the next player can open it.
  PlayerApp next(&kernel, 11, "/dev/vads0",
                 std::make_unique<SineGenerator>(880.0), opts);
  EXPECT_TRUE(next.Start().ok());
}

TEST(PlayerAppTest, OpenFailurePropagates) {
  Simulation sim;
  SimKernel kernel(&sim);
  PlayerApp player(&kernel, 10, "/dev/nonexistent",
                   std::make_unique<SineGenerator>(440.0),
                   PlayerAppOptions{});
  EXPECT_FALSE(player.Start().ok());
}

}  // namespace
}  // namespace espk
