// Tests for the time-shifting recorder (§2.1/§3.3).
#include <gtest/gtest.h>

#include <cstdio>

#include "src/audio/analysis.h"
#include "src/core/system.h"
#include "src/speaker/recorder.h"

namespace espk {
namespace {

struct RecorderRig {
  explicit RecorderRig(SystemOptions sys = {}) : system(sys) {
    RebroadcasterOptions rb;
    rb.codec_override = CodecId::kRaw;  // Bit-exact capture for comparison.
    channel = *system.CreateChannel("program", rb);
    nic = system.lan()->CreateNic();
    recorder = std::make_unique<StreamRecorder>(system.sim(), nic.get());
  }

  EthernetSpeakerSystem system;
  Channel* channel;
  std::unique_ptr<SimNic> nic;
  std::unique_ptr<StreamRecorder> recorder;
};

TEST(RecorderTest, CapturesTheProgramFaithfully) {
  RecorderRig rig;
  ASSERT_TRUE(rig.recorder->StartRecording(rig.channel->group).ok());
  PlayerAppOptions opts;
  opts.config = AudioConfig{8000, 1, AudioEncoding::kLinearS16};
  opts.chunk_frames = 800;
  opts.total_frames = 8000 * 3;
  (void)*rig.system.StartPlayer(rig.channel,
                                std::make_unique<SineGenerator>(440.0), opts);
  rig.system.sim()->RunUntil(Seconds(6));

  ASSERT_TRUE(rig.recorder->ready());
  PcmBuffer take = rig.recorder->Assemble();
  EXPECT_EQ(take.sample_rate, 8000);
  EXPECT_EQ(take.channels, 1);
  // ~3 s captured (packetization may trim the tail fraction of a packet).
  EXPECT_NEAR(static_cast<double>(take.frames()), 3.0 * 8000.0, 4200.0);
  // Content check against a reference tone.
  SineGenerator ref(440.0);
  std::vector<float> reference;
  ref.Generate(take.frames(), 1, 8000, &reference);
  AlignmentResult alignment = FindAlignment(reference, take.samples, 8000);
  EXPECT_GT(alignment.correlation, 0.95);
  EXPECT_EQ(rig.recorder->stats().gaps_filled, 0u);
}

TEST(RecorderTest, LostPacketsBecomeSilenceNotTimeCompression) {
  SystemOptions sys;
  sys.lan.loss_probability = 0.2;
  RecorderRig rig(sys);
  ASSERT_TRUE(rig.recorder->StartRecording(rig.channel->group).ok());
  PlayerAppOptions opts;
  opts.config = AudioConfig{8000, 1, AudioEncoding::kLinearS16};
  opts.chunk_frames = 800;
  opts.total_frames = 8000 * 5;
  (void)*rig.system.StartPlayer(rig.channel,
                                std::make_unique<SineGenerator>(440.0), opts);
  rig.system.sim()->RunUntil(Seconds(9));
  PcmBuffer take = rig.recorder->Assemble();
  // Gaps were filled: the take's length reflects stream time, not just
  // the surviving packets.
  EXPECT_GT(rig.recorder->stats().gaps_filled, 0u);
  double expected_frames =
      static_cast<double>(rig.recorder->stats().frames_recorded);
  EXPECT_NEAR(static_cast<double>(take.frames()), expected_frames, 1.0);
  EXPECT_GT(take.frames(), 3 * 8000);
}

TEST(RecorderTest, StartStopLifecycle) {
  RecorderRig rig;
  EXPECT_FALSE(rig.recorder->StopRecording().ok());  // Not started.
  ASSERT_TRUE(rig.recorder->StartRecording(rig.channel->group).ok());
  EXPECT_FALSE(rig.recorder->StartRecording(rig.channel->group).ok());
  ASSERT_TRUE(rig.recorder->StopRecording().ok());
  EXPECT_FALSE(rig.recorder->recording());
}

TEST(RecorderTest, StopKeepsTheTake) {
  RecorderRig rig;
  ASSERT_TRUE(rig.recorder->StartRecording(rig.channel->group).ok());
  PlayerAppOptions opts;
  opts.config = AudioConfig{8000, 1, AudioEncoding::kLinearS16};
  opts.chunk_frames = 800;
  (void)*rig.system.StartPlayer(rig.channel,
                                std::make_unique<SineGenerator>(440.0), opts);
  rig.system.sim()->RunUntil(Seconds(3));
  uint64_t captured = rig.recorder->stats().chunks_recorded;
  ASSERT_GT(captured, 0u);
  ASSERT_TRUE(rig.recorder->StopRecording().ok());
  rig.system.sim()->RunUntil(Seconds(6));
  // Nothing further captured after stop; the take is intact.
  EXPECT_EQ(rig.recorder->stats().chunks_recorded, captured);
  EXPECT_GT(rig.recorder->Assemble().frames(), 0);
}

TEST(RecorderTest, ExportWavRoundTrip) {
  RecorderRig rig;
  ASSERT_TRUE(rig.recorder->StartRecording(rig.channel->group).ok());
  PlayerAppOptions opts;
  opts.config = AudioConfig{8000, 1, AudioEncoding::kLinearS16};
  opts.chunk_frames = 800;
  (void)*rig.system.StartPlayer(rig.channel,
                                std::make_unique<SineGenerator>(440.0), opts);
  rig.system.sim()->RunUntil(Seconds(3));
  std::string path = ::testing::TempDir() + "/espk_recorder_test.wav";
  ASSERT_TRUE(rig.recorder->ExportWav(path).ok());
  Result<PcmBuffer> back = ReadWavFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->sample_rate, 8000);
  EXPECT_GT(back->frames(), 8000);
  std::remove(path.c_str());
}

TEST(RecorderTest, ExportBeforeAnythingCapturedFails) {
  RecorderRig rig;
  EXPECT_FALSE(rig.recorder->ExportWav("/tmp/espk_nothing.wav").ok());
}

}  // namespace
}  // namespace espk
