#include <gtest/gtest.h>

#include "src/base/prng.h"
#include "src/security/hmac.h"
#include "src/security/hors.h"
#include "src/security/merkle.h"
#include "src/security/sha256.h"
#include "src/security/stream_auth.h"
#include "src/security/tesla.h"

namespace espk {
namespace {

Bytes Str(const char* s) {
  return Bytes(reinterpret_cast<const uint8_t*>(s),
               reinterpret_cast<const uint8_t*>(s) + strlen(s));
}

// ---------------------------------------------------------------- SHA-256 --

TEST(Sha256Test, Fips180KnownVectors) {
  EXPECT_EQ(DigestToHex(Sha256::Hash(Str("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(DigestToHex(Sha256::Hash(Str(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256::Hash(Str(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(DigestToHex(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Prng prng(1);
  Bytes data(1789);
  for (auto& b : data) {
    b = static_cast<uint8_t>(prng.NextU64());
  }
  Sha256 hasher;
  hasher.Update(data.data(), 100);
  hasher.Update(data.data() + 100, 689);
  hasher.Update(data.data() + 789, 1000);
  EXPECT_EQ(hasher.Finish(), Sha256::Hash(data));
}

// ------------------------------------------------------------------- HMAC --

TEST(HmacTest, Rfc4231Case2) {
  // Key = "Jefe", Data = "what do ya want for nothing?".
  Digest mac = HmacSha256(Str("Jefe"), Str("what do ya want for nothing?"));
  EXPECT_EQ(DigestToHex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, Str("Hi There"));
  EXPECT_EQ(DigestToHex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  Bytes key(131, 0xaa);  // > block size.
  Digest mac = HmacSha256(
      key, Str("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(DigestToHex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEqualBehaves) {
  Digest a = Sha256::Hash(Str("x"));
  Digest b = a;
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(ConstantTimeEqual(a, b));
}

// ----------------------------------------------------------------- Merkle --

TEST(MerkleTest, ProofVerifiesForEveryLeaf) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 13; ++i) {  // Non-power-of-two.
    leaves.push_back(Str(("packet " + std::to_string(i)).c_str()));
  }
  MerkleTree tree(leaves);
  for (uint32_t i = 0; i < leaves.size(); ++i) {
    MerkleProof proof = tree.ProveLeaf(i);
    EXPECT_TRUE(MerkleTree::VerifyLeaf(tree.root(), leaves[i], proof)) << i;
  }
}

TEST(MerkleTest, WrongPayloadFails) {
  std::vector<Bytes> leaves = {Str("a"), Str("b"), Str("c"), Str("d")};
  MerkleTree tree(leaves);
  MerkleProof proof = tree.ProveLeaf(2);
  EXPECT_FALSE(MerkleTree::VerifyLeaf(tree.root(), Str("x"), proof));
}

TEST(MerkleTest, WrongIndexFails) {
  std::vector<Bytes> leaves = {Str("a"), Str("b"), Str("c"), Str("d")};
  MerkleTree tree(leaves);
  MerkleProof proof = tree.ProveLeaf(2);
  proof.leaf_index = 1;
  EXPECT_FALSE(MerkleTree::VerifyLeaf(tree.root(), Str("c"), proof));
}

TEST(MerkleTest, ProofSerializationRoundTrip) {
  std::vector<Bytes> leaves = {Str("a"), Str("b"), Str("c"), Str("d"),
                               Str("e")};
  MerkleTree tree(leaves);
  MerkleProof proof = tree.ProveLeaf(4);
  Result<MerkleProof> back = MerkleProof::Deserialize(proof.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(MerkleTree::VerifyLeaf(tree.root(), Str("e"), *back));
}

TEST(MerkleTest, SingleLeafTree) {
  std::vector<Bytes> leaves = {Str("only")};
  MerkleTree tree(leaves);
  EXPECT_TRUE(
      MerkleTree::VerifyLeaf(tree.root(), Str("only"), tree.ProveLeaf(0)));
}

// ------------------------------------------------------------------- HORS --

TEST(HorsTest, SignVerifyRoundTrip) {
  HorsSigner signer(HorsParams{}, /*seed=*/42);
  Bytes message = Str("control packet contents");
  Result<HorsSignature> sig = signer.Sign(message);
  ASSERT_TRUE(sig.ok());
  EXPECT_TRUE(HorsVerify(signer.public_key(), message, *sig));
}

TEST(HorsTest, WrongMessageFails) {
  HorsSigner signer(HorsParams{}, 42);
  Bytes message = Str("authentic");
  Result<HorsSignature> sig = signer.Sign(message);
  ASSERT_TRUE(sig.ok());
  EXPECT_FALSE(HorsVerify(signer.public_key(), Str("forged"), *sig));
}

TEST(HorsTest, TamperedSignatureFails) {
  HorsSigner signer(HorsParams{}, 42);
  Bytes message = Str("authentic");
  HorsSignature sig = *signer.Sign(message);
  sig.revealed[3][0] ^= 1;
  EXPECT_FALSE(HorsVerify(signer.public_key(), message, sig));
}

TEST(HorsTest, KeyExhaustsAfterMaxSignatures) {
  HorsParams params;
  params.max_signatures = 2;
  HorsSigner signer(params, 42);
  EXPECT_TRUE(signer.Sign(Str("one")).ok());
  EXPECT_TRUE(signer.Sign(Str("two")).ok());
  Result<HorsSignature> third = signer.Sign(Str("three"));
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
}

TEST(HorsTest, PublicKeySerializationRoundTrip) {
  HorsSigner signer(HorsParams{}, 7);
  Bytes wire = signer.public_key().Serialize();
  Result<HorsPublicKey> back = HorsPublicKey::Deserialize(wire);
  ASSERT_TRUE(back.ok());
  Bytes message = Str("msg");
  HorsSignature sig = *signer.Sign(message);
  EXPECT_TRUE(HorsVerify(*back, message, sig));
}

TEST(HorsTest, IndicesAreDeterministicAndInRange) {
  HorsParams params;
  auto indices1 = HorsIndices(params, Str("hello"));
  auto indices2 = HorsIndices(params, Str("hello"));
  EXPECT_EQ(indices1, indices2);
  EXPECT_EQ(indices1.size(), params.k);
  for (uint32_t idx : indices1) {
    EXPECT_LT(idx, params.t);
  }
  EXPECT_NE(indices1, HorsIndices(params, Str("world")));
}

TEST(HorsTest, MalformedSignatureRejectedNotCrashed) {
  EXPECT_FALSE(HorsSignature::Deserialize({}).ok());
  EXPECT_FALSE(HorsSignature::Deserialize({0xFF, 0xFF}).ok());
  EXPECT_FALSE(HorsPublicKey::Deserialize({1, 2, 3}).ok());
}

// ------------------------------------------------------------------ TESLA --

TEST(TeslaTest, AuthenticPacketsReleaseAsAuthentic) {
  TeslaSigner signer(/*chain_length=*/32, Seconds(1), /*delay=*/2, 11);
  int authentic = 0;
  int forged = 0;
  TeslaVerifier verifier(signer.commitment(), Seconds(1), 2,
                         [&](const Bytes&, bool ok) {
                           (ok ? authentic : forged)++;
                         });
  // One packet per interval for 10 intervals.
  for (int i = 0; i < 10; ++i) {
    Bytes message = Str(("audio " + std::to_string(i)).c_str());
    TeslaTag tag = *signer.Tag(Seconds(i), message);
    verifier.Ingest(message, tag);
  }
  // Keys for intervals 0..7 have been disclosed by packets 2..9.
  EXPECT_EQ(authentic, 8);
  EXPECT_EQ(forged, 0);
  EXPECT_EQ(verifier.buffered(), 2u);  // Intervals 8 and 9 still sealed.
}

TEST(TeslaTest, TamperedPacketReleasesAsForged) {
  TeslaSigner signer(32, Seconds(1), 1, 11);
  int forged = 0;
  TeslaVerifier verifier(signer.commitment(), Seconds(1), 1,
                         [&](const Bytes&, bool ok) {
                           if (!ok) {
                             ++forged;
                           }
                         });
  Bytes message = Str("original");
  TeslaTag tag = *signer.Tag(Seconds(0), message);
  verifier.Ingest(Str("tampered"), tag);  // Body replaced in flight.
  // Key for interval 0 arrives with an interval-1 packet.
  Bytes m1 = Str("next");
  verifier.Ingest(m1, *signer.Tag(Seconds(1), m1));
  EXPECT_EQ(forged, 1);
}

TEST(TeslaTest, ForgedKeyDisclosureIgnored) {
  TeslaSigner signer(32, Seconds(1), 1, 11);
  int released = 0;
  TeslaVerifier verifier(signer.commitment(), Seconds(1), 1,
                         [&](const Bytes&, bool) { ++released; });
  Bytes message = Str("audio");
  TeslaTag tag = *signer.Tag(Seconds(0), message);
  verifier.Ingest(message, tag);
  // Attacker discloses a bogus key for interval 0.
  TeslaTag forged_tag;
  forged_tag.interval = 1;
  forged_tag.mac = Sha256::Hash(Str("whatever"));
  forged_tag.disclosed_interval = 0;
  forged_tag.disclosed_key = Bytes(32, 0x41);
  verifier.Ingest(Str("attacker"), forged_tag);
  // The genuine interval-0 packet must still be sealed (bogus key rejected).
  EXPECT_EQ(released, 0);
  EXPECT_GE(verifier.buffered(), 1u);
}

TEST(TeslaTest, LatePacketAfterDisclosureRejected) {
  // A packet for an interval whose key is already public is unsafe: anyone
  // could have forged it.
  TeslaSigner signer(32, Seconds(1), 1, 11);
  int forged = 0;
  TeslaVerifier verifier(signer.commitment(), Seconds(1), 1,
                         [&](const Bytes&, bool ok) {
                           if (!ok) {
                             ++forged;
                           }
                         });
  Bytes m0 = Str("zero");
  TeslaTag t0 = *signer.Tag(Seconds(0), m0);
  Bytes m1 = Str("one");
  TeslaTag t1 = *signer.Tag(Seconds(1), m1);  // Discloses K_0.
  verifier.Ingest(m1, t1);
  verifier.Ingest(m0, t0);  // Arrives after K_0 went public.
  EXPECT_EQ(forged, 1);
}

TEST(TeslaTest, ChainExhaustionReported) {
  TeslaSigner signer(4, Seconds(1), 1, 11);
  EXPECT_TRUE(signer.Tag(Seconds(3), Str("x")).ok());
  EXPECT_FALSE(signer.Tag(Seconds(4), Str("x")).ok());
}

TEST(TeslaTest, TagSerializationRoundTrip) {
  TeslaSigner signer(16, Seconds(1), 2, 5);
  TeslaTag tag = *signer.Tag(Seconds(5), Str("payload"));
  Result<TeslaTag> back = TeslaTag::Deserialize(tag.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->interval, tag.interval);
  EXPECT_EQ(back->mac, tag.mac);
  EXPECT_EQ(back->disclosed_interval, tag.disclosed_interval);
  EXPECT_EQ(back->disclosed_key, tag.disclosed_key);
}

// ------------------------------------------------------------ Stream auth --

TEST(StreamAuthTest, DataPacketHmacRoundTrip) {
  StreamAuthOptions options;
  options.group_key = Str("lan group key");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());

  DataPacket data;
  data.stream_id = 1;
  data.seq = 5;
  data.payload = {1, 2, 3};
  Bytes auth = authenticator.Sign(SignedRegion(data));
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(data, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(verifier.Verify(*parsed));
}

TEST(StreamAuthTest, ControlPacketHorsRoundTrip) {
  StreamAuthOptions options;
  options.group_key = Str("lan group key");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());

  ControlPacket control;
  control.stream_id = 1;
  control.config = AudioConfig::CdQuality();
  Bytes auth = authenticator.Sign(SignedRegion(control));
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(control, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(verifier.Verify(*parsed));
}

TEST(StreamAuthTest, UnsignedPacketRejected) {
  StreamAuthOptions options;
  options.group_key = Str("k");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());
  DataPacket data;
  data.payload = {1};
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(data));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(verifier.Verify(*parsed));
  EXPECT_EQ(verifier.stats().rejected_no_auth, 1u);
}

TEST(StreamAuthTest, WrongGroupKeyRejected) {
  StreamAuthOptions options;
  options.group_key = Str("producer key");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(Str("different key"),
                          authenticator.root_public_key());
  DataPacket data;
  data.payload = {1, 2};
  Bytes auth = authenticator.Sign(SignedRegion(data));
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(data, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(verifier.Verify(*parsed));
  EXPECT_EQ(verifier.stats().rejected_bad_mac, 1u);
}

TEST(StreamAuthTest, AttackerWithoutKeysCannotForge) {
  StreamAuthOptions options;
  options.group_key = Str("secret");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());
  // Attacker crafts a data packet and guesses a MAC.
  DataPacket evil;
  evil.stream_id = 1;
  evil.seq = 100;
  evil.payload = Str("injected noise");
  ByteWriter fake;
  fake.WriteU8(static_cast<uint8_t>(AuthScheme::kHmac));
  Prng prng(3);
  for (int i = 0; i < 32; ++i) {
    fake.WriteU8(static_cast<uint8_t>(prng.NextU64()));
  }
  Result<ParsedPacket> parsed =
      ParsePacket(SerializePacket(evil, fake.TakeBytes()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(verifier.Verify(*parsed));
}

TEST(StreamAuthTest, KeyRotationFollowsTheChain) {
  StreamAuthOptions options;
  options.group_key = Str("k");
  options.hors.max_signatures = 2;  // Rotate quickly.
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());

  // Sign enough control packets to force several rotations; the verifier
  // must follow via the certified next-keys.
  for (uint32_t i = 0; i < 10; ++i) {
    ControlPacket control;
    control.stream_id = 1;
    control.control_seq = i;
    control.config = AudioConfig::CdQuality();
    Bytes auth = authenticator.Sign(SignedRegion(control));
    ASSERT_FALSE(auth.empty()) << "signer exhausted at " << i;
    Result<ParsedPacket> parsed =
        ParsePacket(SerializePacket(control, auth));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(verifier.Verify(*parsed)) << "packet " << i;
  }
  EXPECT_GE(authenticator.hors_epoch(), 4u);
  EXPECT_GE(verifier.stats().key_rotations, 4u);
}

TEST(StreamAuthTest, TamperedControlPacketRejected) {
  StreamAuthOptions options;
  options.group_key = Str("k");
  StreamAuthenticator authenticator(options);
  StreamVerifier verifier(options.group_key,
                          authenticator.root_public_key());
  ControlPacket control;
  control.stream_id = 1;
  control.config = AudioConfig::CdQuality();
  Bytes auth = authenticator.Sign(SignedRegion(control));
  // Attacker changes the advertised config, recomputes CRC (ParsePacket
  // would otherwise reject), keeps the old signature.
  control.config = AudioConfig::PhoneQuality();
  Result<ParsedPacket> parsed = ParsePacket(SerializePacket(control, auth));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(verifier.Verify(*parsed));
  EXPECT_EQ(verifier.stats().rejected_bad_signature, 1u);
}

}  // namespace
}  // namespace espk
