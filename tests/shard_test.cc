// ShardGroup (src/sim/shard.h): conservative-lookahead epoch execution.
// The properties pinned here are the sharded runtime's whole contract:
// cross-shard posts land at the right time in a total deterministic order,
// results are identical for any executor width, ring overflow degrades to
// the spill path without losing or reordering anything, and the epoch
// planner skips idle stretches instead of grinding through them.
#include "src/sim/shard.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/time_types.h"

namespace espk {
namespace {

using Trace = std::vector<std::tuple<int, SimTime, int>>;  // (shard, at, token)

// Runs a token-passing chain: `tokens` tokens start on shard 0 at t=0; a
// shard holding token k records it and forwards it to the next shard
// `hop_delay` later, for `hops` hops total. Returns every shard's record,
// merged in (shard, at, token) order — any scheduling nondeterminism would
// change per-shard contents, not merely the merge order.
Trace RunChain(int shards, int threads, size_t inbox_capacity, int tokens,
               int hops, SimDuration hop_delay, uint64_t* spills_out,
               uint64_t* epochs_out) {
  ShardGroup::Options options;
  options.shards = shards;
  options.threads = threads;
  options.lookahead = Microseconds(50);
  options.inbox_capacity = inbox_capacity;
  ShardGroup group(options);

  std::vector<Trace> per_shard(static_cast<size_t>(shards));
  // Self-referential hop closure; captured by copy into each post.
  struct Hop {
    ShardGroup* group;
    std::vector<Trace>* records;
    int shards;
    SimDuration delay;
    void operator()(int shard, int token, int hops_left) const {
      (*records)[static_cast<size_t>(shard)].push_back(
          {shard, group->sim(shard)->now(), token});
      if (hops_left == 0) {
        return;
      }
      const int next = (shard + 1) % shards;
      const SimTime at = group->sim(shard)->now() + delay;
      Hop self = *this;
      group->Post(shard, next, at, [self, next, token, hops_left] {
        self(next, token, hops_left - 1);
      });
    }
  };
  Hop hop{&group, &per_shard, shards, hop_delay};
  for (int token = 0; token < tokens; ++token) {
    group.sim(0)->ScheduleAt(token, [hop, token, hops] {
      hop(0, token, hops);
    });
  }
  group.RunUntilIdle();

  if (spills_out != nullptr) {
    *spills_out = group.ring_spills();
  }
  if (epochs_out != nullptr) {
    *epochs_out = group.epochs_run();
  }
  Trace merged;
  for (const Trace& t : per_shard) {
    merged.insert(merged.end(), t.begin(), t.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

TEST(ShardGroupTest, CrossShardPostDeliversAtRequestedTime) {
  ShardGroup::Options options;
  options.shards = 2;
  options.lookahead = Microseconds(50);
  ShardGroup group(options);
  SimTime delivered_at = -1;
  SimTime local_now = -1;
  group.sim(0)->ScheduleAt(Milliseconds(1), [&] {
    group.Post(0, 1, Milliseconds(1) + Microseconds(50), [&] {
      delivered_at = group.sim(1)->now();
    });
  });
  group.sim(1)->ScheduleAt(Milliseconds(2), [&] {
    local_now = group.sim(1)->now();
  });
  group.RunUntilIdle();
  EXPECT_EQ(delivered_at, Milliseconds(1) + Microseconds(50));
  EXPECT_EQ(local_now, Milliseconds(2));
  EXPECT_EQ(group.messages_posted(), 1u);
}

TEST(ShardGroupTest, SameShardPostIsLocal) {
  ShardGroup::Options options;
  options.shards = 2;
  ShardGroup group(options);
  bool ran = false;
  // A same-shard post is an ordinary ScheduleAt: no lookahead constraint,
  // no ring traffic.
  group.Post(1, 1, Microseconds(1), [&] { ran = true; });
  group.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(group.messages_posted(), 0u);
}

TEST(ShardGroupTest, RunUntilAdvancesEveryShardClock) {
  ShardGroup::Options options;
  options.shards = 3;
  ShardGroup group(options);
  group.RunUntil(Milliseconds(7));
  EXPECT_EQ(group.now(), Milliseconds(7));
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(group.sim(s)->now(), Milliseconds(7)) << "shard " << s;
  }
}

TEST(ShardGroupTest, ResultsIdenticalForAnyExecutorWidth) {
  // The determinism claim, directly: same chain, executor width 1 (fully
  // inline) vs 4 (worker threads), bit-identical traces.
  Trace inline_trace =
      RunChain(4, 1, 64, 16, 12, Microseconds(75), nullptr, nullptr);
  Trace threaded_trace =
      RunChain(4, 4, 64, 16, 12, Microseconds(75), nullptr, nullptr);
  ASSERT_FALSE(inline_trace.empty());
  EXPECT_EQ(inline_trace, threaded_trace);
  // And run-to-run stability at the same width.
  Trace threaded_again =
      RunChain(4, 4, 64, 16, 12, Microseconds(75), nullptr, nullptr);
  EXPECT_EQ(threaded_trace, threaded_again);
}

TEST(ShardGroupTest, RingOverflowSpillsWithoutLossOrReorder) {
  // A 2-slot ring with 64 tokens in flight must overflow; the spill path
  // has to deliver the identical trace a roomy ring produces.
  uint64_t spills = 0;
  Trace tiny_ring =
      RunChain(2, 1, 2, 64, 6, Microseconds(60), &spills, nullptr);
  EXPECT_GT(spills, 0u);
  Trace big_ring =
      RunChain(2, 1, 4096, 64, 6, Microseconds(60), nullptr, nullptr);
  EXPECT_EQ(tiny_ring, big_ring);
  // Threaded + spilling together, still identical.
  Trace tiny_ring_threaded =
      RunChain(2, 2, 2, 64, 6, Microseconds(60), nullptr, nullptr);
  EXPECT_EQ(tiny_ring, tiny_ring_threaded);
}

TEST(ShardGroupTest, EpochPlannerJumpsIdleStretches) {
  // Two events a full second apart with 50 us lookahead: a naive epoch loop
  // would grind ~20000 epochs; the planner must jump the dead air.
  ShardGroup::Options options;
  options.shards = 2;
  options.lookahead = Microseconds(50);
  ShardGroup group(options);
  int ran = 0;
  group.sim(0)->ScheduleAt(Microseconds(10), [&] { ++ran; });
  group.sim(1)->ScheduleAt(Seconds(1), [&] { ++ran; });
  group.RunUntilIdle();
  EXPECT_EQ(ran, 2);
  EXPECT_LE(group.epochs_run(), 8u);
}

TEST(ShardGroupTest, MessagesInFlightKeepRunUntilIdleAlive) {
  // A post whose target shard has no events of its own: RunUntilIdle must
  // not stop while the message is still in a ring.
  ShardGroup::Options options;
  options.shards = 2;
  ShardGroup group(options);
  bool ran = false;
  group.sim(0)->ScheduleAt(0, [&] {
    group.Post(0, 1, Milliseconds(3), [&] { ran = true; });
  });
  group.RunUntilIdle();
  EXPECT_TRUE(ran);
}

// Records every barrier and pins barriers to a fixed grid, mirroring how
// the ZoneCollector drives sampler ticks from the epoch barrier.
class RecordingHook : public ShardGroup::BarrierHook {
 public:
  RecordingHook(SimDuration period, int shards)
      : period_(period), next_(period), shards_(shards) {}

  SimTime NextAlignment() const override { return next_; }

  void OnBarrier(const ShardGroup::EpochRecord& record) override {
    ++barriers_;
    last_index_ = record.index;
    zones_always_present_ =
        zones_always_present_ && record.zones != nullptr;
    if (record.zones != nullptr) {
      for (int z = 0; z < shards_; ++z) {
        drained_seen_ += record.zones[z].drained;
      }
    }
    if (record.end == next_) {
      ++aligned_;
    }
    while (next_ <= record.end) {
      next_ += period_;
    }
  }

  uint64_t barriers() const { return barriers_; }
  uint64_t aligned() const { return aligned_; }
  uint64_t last_index() const { return last_index_; }
  uint64_t drained_seen() const { return drained_seen_; }
  bool zones_always_present() const { return zones_always_present_; }

 private:
  SimDuration period_;
  SimTime next_;
  int shards_;
  uint64_t barriers_ = 0;
  uint64_t aligned_ = 0;
  uint64_t last_index_ = 0;
  uint64_t drained_seen_ = 0;
  bool zones_always_present_ = true;
};

TEST(ShardGroupTest, BarrierHooksAlignEpochsToRequestedGrid) {
  ShardGroup::Options options;
  options.shards = 2;
  options.lookahead = Microseconds(50);
  ShardGroup group(options);
  RecordingHook hook(Microseconds(300), 2);
  group.AddBarrierHook(&hook);
  // Sparse events either side of the grid points: without the hook's
  // alignment the planner would jump the dead air past them entirely.
  int ran = 0;
  group.sim(0)->ScheduleAt(Microseconds(10), [&] { ++ran; });
  group.sim(1)->ScheduleAt(Milliseconds(2), [&] { ++ran; });
  group.RunUntil(Milliseconds(3));
  EXPECT_EQ(ran, 2);
  // Every 300 us grid point in (0, 3 ms] got a barrier landing exactly on
  // it, and the hook saw every barrier (index is contiguous with the total).
  EXPECT_EQ(hook.aligned(), 10u);
  EXPECT_GE(hook.barriers(), 10u);
  EXPECT_EQ(hook.last_index() + 1, group.epochs_run());
  EXPECT_TRUE(hook.zones_always_present());
  // Removal really detaches: further epochs don't reach the hook.
  group.RemoveBarrierHook(&hook);
  const uint64_t barriers_before = hook.barriers();
  group.RunFor(Milliseconds(1));
  EXPECT_EQ(hook.barriers(), barriers_before);
}

TEST(ShardGroupTest, PerZoneCountersSumToGroupTotals) {
  // Each shard showers its right neighbor through a 2-slot ring, so the
  // per-zone posted/drained/spill counters and the inbox high watermark all
  // see real traffic — and their sums must match the group-wide totals.
  ShardGroup::Options options;
  options.shards = 3;
  options.lookahead = Microseconds(50);
  options.inbox_capacity = 2;
  ShardGroup group(options);
  RecordingHook hook(Milliseconds(1), 3);  // Also checks drained plumbing.
  group.AddBarrierHook(&hook);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 40; ++i) {
      group.sim(s)->ScheduleAt(Microseconds(i), [&group, s] {
        const int dst = (s + 1) % 3;
        group.Post(s, dst, group.sim(s)->now() + Microseconds(60), [] {});
      });
    }
  }
  group.RunUntilIdle();
  uint64_t posted = 0;
  uint64_t spilled = 0;
  uint64_t drained = 0;
  size_t high_watermark = 0;
  for (int z = 0; z < 3; ++z) {
    posted += group.zone_messages_posted(z);
    spilled += group.zone_ring_spills(z);
    drained += group.zone_messages_drained(z);
    high_watermark =
        std::max(high_watermark, group.zone_inbox_high_watermark(z));
  }
  EXPECT_EQ(posted, 120u);
  EXPECT_EQ(posted, group.messages_posted());
  EXPECT_EQ(drained, posted);
  EXPECT_EQ(spilled, group.ring_spills());
  EXPECT_GT(spilled, 0u);
  EXPECT_GT(high_watermark, 2u);  // Spill occupancy counts, not just ring.
  EXPECT_EQ(hook.drained_seen(), posted);
}

}  // namespace
}  // namespace espk
