// The sharded runtime's headline guarantee, end to end: the SAME fleet run
// on one shard (the classic single-loop path) and on four shards (zone
// batching, SPSC handoff, epoch barriers) — with one executor thread or
// several — produces bit-identical results. "Results" is taken broadly:
// every speaker's stats struct, its rendered PCM, the LAN's wire
// accounting, and the merged per-packet trace streams.
#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/system.h"

namespace espk {
namespace {

struct FleetResult {
  std::vector<SpeakerStats> stats;
  std::vector<std::vector<float>> rendered;
  SegmentStats lan;
  uint64_t messages_posted = 0;
  // (at, stream, seq, stage, node): a total order over trace events that is
  // independent of which tracer ring (zone) recorded them and of ring
  // eviction order.
  std::vector<std::tuple<SimTime, uint32_t, uint32_t, uint8_t, uint32_t>>
      trace_events;
};

bool operator==(const SpeakerStats& a, const SpeakerStats& b) {
  return a.packets_received == b.packets_received &&
         a.control_packets == b.control_packets &&
         a.data_packets == b.data_packets && a.bad_packets == b.bad_packets &&
         a.auth_rejected == b.auth_rejected &&
         a.waiting_drops == b.waiting_drops && a.late_drops == b.late_drops &&
         a.overflow_drops == b.overflow_drops &&
         a.duplicate_drops == b.duplicate_drops &&
         a.chunks_played == b.chunks_played &&
         a.decode_errors == b.decode_errors &&
         a.total_lateness_ns == b.total_lateness_ns &&
         a.silence_ns == b.silence_ns;
}

FleetResult CollectResult(EthernetSpeakerSystem& system) {
  FleetResult result;
  for (const auto& speaker : system.speakers()) {
    result.stats.push_back(speaker->stats());
    // A speaker whose every subscription was dropped has no output to
    // render; an empty window still participates in the comparison.
    result.rendered.push_back(
        speaker->ready() ? speaker->output()->Render(Seconds(1), Seconds(2))
                         : std::vector<float>());
  }
  result.lan = system.lan()->stats();
  result.messages_posted = system.shards()->messages_posted();
  for (int z = 0; z < system.zones(); ++z) {
    const PacketTracer* tracer = system.zone_tracer(z);
    EXPECT_EQ(tracer->dropped(), 0u) << "ring evictions would break the "
                                        "trace comparison; raise capacity";
    for (const TraceEvent& e : tracer->events()) {
      result.trace_events.push_back({e.at, e.stream_id, e.seq,
                                     static_cast<uint8_t>(e.stage), e.node});
    }
  }
  std::sort(result.trace_events.begin(), result.trace_events.end());
  return result;
}

FleetResult RunFleet(int zones, int threads, SimDuration jitter = 0) {
  SystemOptions options;
  options.sharded.zones = zones;
  options.sharded.threads = threads;
  options.lan.jitter = jitter;
  EthernetSpeakerSystem system(options);
  Channel* channel = *system.CreateChannel("music");
  constexpr int kSpeakers = 5;
  for (int i = 0; i < kSpeakers; ++i) {
    SpeakerOptions speaker_options;
    speaker_options.name = "es" + std::to_string(i);
    speaker_options.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(speaker_options, channel->group);
  }
  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(11),
                               player_options)
                  .ok());
  system.RunUntil(Seconds(4));

  for (const auto& speaker : system.speakers()) {
    EXPECT_TRUE(speaker->ready()) << speaker->name() << " zones=" << zones;
  }
  return CollectResult(system);
}

// Same fleet, but with subscription churn between runs: two speakers pick
// up a second stream mid-run and one drops its only one. join_latency >=
// lookahead is the documented contract that makes membership changes land
// on the same virtual instant whether the requesting speaker shares the
// segment's shard or posts across the epoch barrier.
FleetResult RunChurnFleet(int zones, int threads) {
  SystemOptions options;
  options.sharded.zones = zones;
  options.sharded.threads = threads;
  options.lan.join_latency = Milliseconds(1);
  EthernetSpeakerSystem system(options);
  Channel* music = *system.CreateChannel("music");
  Channel* voice = *system.CreateChannel("voice");
  constexpr int kSpeakers = 5;
  for (int i = 0; i < kSpeakers; ++i) {
    SpeakerOptions speaker_options;
    speaker_options.name = "es" + std::to_string(i);
    speaker_options.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(speaker_options, music->group);
  }
  PlayerAppOptions music_options;
  music_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(music, std::make_unique<MusicLikeGenerator>(11),
                               music_options)
                  .ok());
  PlayerAppOptions voice_options;
  voice_options.config = AudioConfig::PhoneQuality();
  voice_options.chunk_frames = 800;
  EXPECT_TRUE(system
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(12),
                               voice_options)
                  .ok());
  system.RunUntil(Seconds(2));
  EXPECT_TRUE(system.SubscribeSpeaker(1, "voice").ok());
  EXPECT_TRUE(system.SubscribeSpeaker(3, "voice").ok());
  EXPECT_TRUE(system.UnsubscribeSpeaker(2, "music").ok());
  system.RunUntil(Seconds(4));
  return CollectResult(system);
}

void ExpectIdentical(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_TRUE(a.stats[i] == b.stats[i]) << "speaker " << i << " diverged";
    EXPECT_EQ(a.rendered[i], b.rendered[i])
        << "speaker " << i << " rendered different PCM";
  }
  EXPECT_EQ(a.lan.packets_offered, b.lan.packets_offered);
  EXPECT_EQ(a.lan.packets_sent, b.lan.packets_sent);
  EXPECT_EQ(a.lan.deliveries, b.lan.deliveries);
  EXPECT_EQ(a.lan.deliveries_lost, b.lan.deliveries_lost);
  EXPECT_EQ(a.lan.bytes_on_wire, b.lan.bytes_on_wire);
  EXPECT_EQ(a.trace_events, b.trace_events);
}

TEST(ShardedDeterminismTest, OneShardAndFourShardsAreBitIdentical) {
  FleetResult classic = RunFleet(/*zones=*/1, /*threads=*/1);
  FleetResult sharded = RunFleet(/*zones=*/4, /*threads=*/1);
  ASSERT_GT(classic.stats[0].chunks_played, 25u);
  EXPECT_EQ(classic.messages_posted, 0u);
  EXPECT_GT(sharded.messages_posted, 0u);  // The zone path actually ran.
  ExpectIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, ExecutorWidthDoesNotChangeResults) {
  FleetResult inline_run = RunFleet(/*zones=*/4, /*threads=*/1);
  FleetResult threaded_run = RunFleet(/*zones=*/4, /*threads=*/4);
  ExpectIdentical(inline_run, threaded_run);
}

TEST(ShardedDeterminismTest, JitteredDeliveriesStayBitIdentical) {
  // Jitter makes per-member arrivals diverge inside a zone batch, forcing
  // the deferred-entry path in SpeakerZone; the PRNG draws happen on the
  // home shard in NIC creation order either way, so results must still
  // match exactly.
  const SimDuration jitter = Microseconds(200);
  FleetResult classic = RunFleet(1, 1, jitter);
  FleetResult sharded = RunFleet(4, 2, jitter);
  ASSERT_GT(classic.stats[0].chunks_played, 25u);
  ExpectIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, SubscriptionChurnStaysBitIdentical) {
  FleetResult classic = RunChurnFleet(/*zones=*/1, /*threads=*/1);
  FleetResult sharded = RunChurnFleet(/*zones=*/4, /*threads=*/2);
  // The churn actually happened: es-1 heard both streams, es-2 went silent
  // after 2 s but kept what it had played.
  ASSERT_GT(classic.stats[1].chunks_played, classic.stats[0].chunks_played);
  ASSERT_GT(classic.stats[2].chunks_played, 0u);
  ASSERT_LT(classic.stats[2].chunks_played, classic.stats[0].chunks_played);
  ExpectIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, ShardedSystemRefusesSingleLoopPlanes) {
  SystemOptions options;
  options.sharded.zones = 2;
  EthernetSpeakerSystem system(options);
  EXPECT_EQ(system.EnableHealthMonitoring(), nullptr);
  EXPECT_EQ(system.EnableSpanTracing(), nullptr);
  EXPECT_TRUE(system.is_sharded());
  EXPECT_EQ(system.zones(), 2);
}

TEST(ShardedDeterminismTest, ZonePlacementRoundRobinsAndBlocks) {
  {
    SystemOptions options;
    options.sharded.zones = 3;
    EthernetSpeakerSystem system(options);
    Channel* channel = *system.CreateChannel("music");
    for (int i = 0; i < 6; ++i) {
      (void)*system.AddSpeaker(SpeakerOptions{}, channel->group);
    }
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(system.ZoneOf(static_cast<size_t>(i)), i % 3);
    }
  }
  {
    SystemOptions options;
    options.sharded.zones = 3;
    options.sharded.speakers_per_zone = 2;
    EthernetSpeakerSystem system(options);
    Channel* channel = *system.CreateChannel("music");
    for (int i = 0; i < 6; ++i) {
      (void)*system.AddSpeaker(SpeakerOptions{}, channel->group);
    }
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(system.ZoneOf(static_cast<size_t>(i)), i / 2);
    }
  }
}

}  // namespace
}  // namespace espk
