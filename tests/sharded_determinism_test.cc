// The sharded runtime's headline guarantee, end to end: the SAME fleet run
// on one shard (the classic single-loop path) and on four shards (zone
// batching, SPSC handoff, epoch barriers) — with one executor thread or
// several — produces bit-identical results. "Results" is taken broadly:
// every speaker's stats struct, its rendered PCM, the LAN's wire
// accounting, and the merged per-packet trace streams.
#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/system.h"

namespace espk {
namespace {

struct FleetResult {
  std::vector<SpeakerStats> stats;
  std::vector<std::vector<float>> rendered;
  SegmentStats lan;
  uint64_t messages_posted = 0;
  // (at, stream, seq, stage, node): a total order over trace events that is
  // independent of which tracer ring (zone) recorded them and of ring
  // eviction order.
  std::vector<std::tuple<SimTime, uint32_t, uint32_t, uint8_t, uint32_t>>
      trace_events;
};

bool operator==(const SpeakerStats& a, const SpeakerStats& b) {
  return a.packets_received == b.packets_received &&
         a.control_packets == b.control_packets &&
         a.data_packets == b.data_packets && a.bad_packets == b.bad_packets &&
         a.auth_rejected == b.auth_rejected &&
         a.waiting_drops == b.waiting_drops && a.late_drops == b.late_drops &&
         a.overflow_drops == b.overflow_drops &&
         a.duplicate_drops == b.duplicate_drops &&
         a.chunks_played == b.chunks_played &&
         a.decode_errors == b.decode_errors &&
         a.total_lateness_ns == b.total_lateness_ns &&
         a.silence_ns == b.silence_ns;
}

FleetResult CollectResult(EthernetSpeakerSystem& system) {
  FleetResult result;
  for (const auto& speaker : system.speakers()) {
    result.stats.push_back(speaker->stats());
    // A speaker whose every subscription was dropped has no output to
    // render; an empty window still participates in the comparison.
    result.rendered.push_back(
        speaker->ready() ? speaker->output()->Render(Seconds(1), Seconds(2))
                         : std::vector<float>());
  }
  result.lan = system.lan()->stats();
  result.messages_posted = system.shards()->messages_posted();
  for (int z = 0; z < system.zones(); ++z) {
    const PacketTracer* tracer = system.zone_tracer(z);
    EXPECT_EQ(tracer->dropped(), 0u) << "ring evictions would break the "
                                        "trace comparison; raise capacity";
    for (const TraceEvent& e : tracer->events()) {
      result.trace_events.push_back({e.at, e.stream_id, e.seq,
                                     static_cast<uint8_t>(e.stage), e.node});
    }
  }
  std::sort(result.trace_events.begin(), result.trace_events.end());
  return result;
}

FleetResult RunFleet(int zones, int threads, SimDuration jitter = 0) {
  SystemOptions options;
  options.sharded.zones = zones;
  options.sharded.threads = threads;
  options.lan.jitter = jitter;
  EthernetSpeakerSystem system(options);
  Channel* channel = *system.CreateChannel("music");
  constexpr int kSpeakers = 5;
  for (int i = 0; i < kSpeakers; ++i) {
    SpeakerOptions speaker_options;
    speaker_options.name = "es" + std::to_string(i);
    speaker_options.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(speaker_options, channel->group);
  }
  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(11),
                               player_options)
                  .ok());
  system.RunUntil(Seconds(4));

  for (const auto& speaker : system.speakers()) {
    EXPECT_TRUE(speaker->ready()) << speaker->name() << " zones=" << zones;
  }
  return CollectResult(system);
}

// Same fleet, but with subscription churn between runs: two speakers pick
// up a second stream mid-run and one drops its only one. join_latency >=
// lookahead is the documented contract that makes membership changes land
// on the same virtual instant whether the requesting speaker shares the
// segment's shard or posts across the epoch barrier.
FleetResult RunChurnFleet(int zones, int threads) {
  SystemOptions options;
  options.sharded.zones = zones;
  options.sharded.threads = threads;
  options.lan.join_latency = Milliseconds(1);
  EthernetSpeakerSystem system(options);
  Channel* music = *system.CreateChannel("music");
  Channel* voice = *system.CreateChannel("voice");
  constexpr int kSpeakers = 5;
  for (int i = 0; i < kSpeakers; ++i) {
    SpeakerOptions speaker_options;
    speaker_options.name = "es" + std::to_string(i);
    speaker_options.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(speaker_options, music->group);
  }
  PlayerAppOptions music_options;
  music_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(music, std::make_unique<MusicLikeGenerator>(11),
                               music_options)
                  .ok());
  PlayerAppOptions voice_options;
  voice_options.config = AudioConfig::PhoneQuality();
  voice_options.chunk_frames = 800;
  EXPECT_TRUE(system
                  .StartPlayer(voice,
                               std::make_unique<SpeechLikeGenerator>(12),
                               voice_options)
                  .ok());
  system.RunUntil(Seconds(2));
  EXPECT_TRUE(system.SubscribeSpeaker(1, "voice").ok());
  EXPECT_TRUE(system.SubscribeSpeaker(3, "voice").ok());
  EXPECT_TRUE(system.UnsubscribeSpeaker(2, "music").ok());
  system.RunUntil(Seconds(4));
  return CollectResult(system);
}

void ExpectIdentical(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_TRUE(a.stats[i] == b.stats[i]) << "speaker " << i << " diverged";
    EXPECT_EQ(a.rendered[i], b.rendered[i])
        << "speaker " << i << " rendered different PCM";
  }
  EXPECT_EQ(a.lan.packets_offered, b.lan.packets_offered);
  EXPECT_EQ(a.lan.packets_sent, b.lan.packets_sent);
  EXPECT_EQ(a.lan.deliveries, b.lan.deliveries);
  EXPECT_EQ(a.lan.deliveries_lost, b.lan.deliveries_lost);
  EXPECT_EQ(a.lan.bytes_on_wire, b.lan.bytes_on_wire);
  EXPECT_EQ(a.trace_events, b.trace_events);
}

TEST(ShardedDeterminismTest, OneShardAndFourShardsAreBitIdentical) {
  FleetResult classic = RunFleet(/*zones=*/1, /*threads=*/1);
  FleetResult sharded = RunFleet(/*zones=*/4, /*threads=*/1);
  ASSERT_GT(classic.stats[0].chunks_played, 25u);
  EXPECT_EQ(classic.messages_posted, 0u);
  EXPECT_GT(sharded.messages_posted, 0u);  // The zone path actually ran.
  ExpectIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, ExecutorWidthDoesNotChangeResults) {
  FleetResult inline_run = RunFleet(/*zones=*/4, /*threads=*/1);
  FleetResult threaded_run = RunFleet(/*zones=*/4, /*threads=*/4);
  ExpectIdentical(inline_run, threaded_run);
}

TEST(ShardedDeterminismTest, JitteredDeliveriesStayBitIdentical) {
  // Jitter makes per-member arrivals diverge inside a zone batch, forcing
  // the deferred-entry path in SpeakerZone; the PRNG draws happen on the
  // home shard in NIC creation order either way, so results must still
  // match exactly.
  const SimDuration jitter = Microseconds(200);
  FleetResult classic = RunFleet(1, 1, jitter);
  FleetResult sharded = RunFleet(4, 2, jitter);
  ASSERT_GT(classic.stats[0].chunks_played, 25u);
  ExpectIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, SubscriptionChurnStaysBitIdentical) {
  FleetResult classic = RunChurnFleet(/*zones=*/1, /*threads=*/1);
  FleetResult sharded = RunChurnFleet(/*zones=*/4, /*threads=*/2);
  // The churn actually happened: es-1 heard both streams, es-2 went silent
  // after 2 s but kept what it had played.
  ASSERT_GT(classic.stats[1].chunks_played, classic.stats[0].chunks_played);
  ASSERT_GT(classic.stats[2].chunks_played, 0u);
  ASSERT_LT(classic.stats[2].chunks_played, classic.stats[0].chunks_played);
  ExpectIdentical(classic, sharded);
}

// The single-loop observability planes USED to refuse zones > 1; they now
// enable through the ZoneCollector. This is the enablement counterpart of
// the old refusal test.
TEST(ShardedDeterminismTest, ShardedSystemEnablesSingleLoopPlanes) {
  SystemOptions options;
  options.sharded.zones = 2;
  EthernetSpeakerSystem system(options);
  EXPECT_TRUE(system.is_sharded());
  EXPECT_EQ(system.zone_collector(), nullptr);  // Built lazily by Enable*.
  Channel* channel = *system.CreateChannel("music");
  for (int i = 0; i < 2; ++i) {
    (void)*system.AddSpeaker(SpeakerOptions{}, channel->group);
  }
  SpanPlane* spans = system.EnableSpanTracing();
  HealthMonitor* health = system.EnableHealthMonitoring();
  ASSERT_NE(spans, nullptr);
  ASSERT_NE(health, nullptr);
  EXPECT_TRUE(health->running());
  ASSERT_NE(system.zone_collector(), nullptr);
  EXPECT_EQ(system.EnableSpanTracing(), spans);          // Idempotent.
  EXPECT_EQ(system.EnableHealthMonitoring(), health);    // Idempotent.
  EXPECT_NE(system.FindStation("zone-0"), nullptr);
  EXPECT_NE(system.FindStation("zone-1"), nullptr);

  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(11),
                               player_options)
                  .ok());
  system.RunUntil(Seconds(1));

  ZoneCollector* collector = system.zone_collector();
  EXPECT_GT(collector->barriers_seen(), 0u);
  EXPECT_GT(collector->events_merged(), 0u);
  EXPECT_EQ(collector->merge_lost(), 0u);
  // The sampler ticked at barriers (10 aligned ticks in 1 s at the default
  // 100 ms period) and spans assembled over the merged mirror.
  EXPECT_EQ(health->sampler()->ticks(), 10u);
  uint64_t appended = 0;
  for (const SpanRecorder* recorder : spans->recorders()) {
    appended += recorder->appended();
  }
  EXPECT_GT(appended, 0u);
  // The runtime stations carry the self-telemetry catalog.
  const std::string exposition =
      system.FindStation("zone-1")->registry->TextExposition();
  EXPECT_NE(exposition.find("runtime_epochs"), std::string::npos);
  EXPECT_NE(exposition.find("runtime_barrier_wait_us"), std::string::npos);
}

// Observability bit-identity: the same fleet, with the span plane and
// health monitor on, produces identical spans, alert logs, postmortem
// documents, and merged trace streams whether it runs on one shard or
// four. Speaker 4 decodes slower than realtime (deadline misses) and the
// segment is squeezed to 1 Mb/s mid-run (queue drops), so alerts actually
// fire and clear and the flight recorder writes postmortems.
struct ObsResult {
  FleetResult base;
  // (station, appended, dropped) per span recorder, creation order.
  std::vector<std::tuple<std::string, uint64_t, uint64_t>> recorders;
  // Sorted span tuples across all recorders.
  std::vector<std::tuple<uint64_t, uint32_t, uint32_t, uint8_t, uint8_t,
                         uint32_t, SimTime, SimTime>>
      spans;
  // The alert log verbatim: rule evaluation order is fixed, so fire/clear
  // sequences must match tuple for tuple.
  std::vector<std::tuple<std::string, bool, double, double, SimTime>> alerts;
  std::string status;
  // (rule, json) per postmortem, capture order.
  std::vector<std::pair<std::string, std::string>> postmortems;
  uint64_t ticks = 0;
  // The merged mirror ring (classic: the one tracer) with record stamps.
  std::vector<std::tuple<SimTime, SimTime, uint32_t, uint32_t, uint8_t,
                         uint32_t>>
      mirror;
};

// Postmortems embed the full metrics exposition, which includes HOST-CPU
// measurements (the codec's encode cost) — those can never be bit-identical,
// not even between two classic runs. Scrub their lines (the exposition is
// one JSON string, lines separated by the two-character escape `\n`) and
// compare everything else exactly.
std::string ScrubHostMetrics(const std::string& json) {
  std::string out;
  size_t pos = 0;
  bool first = true;
  while (true) {
    const size_t next = json.find("\\n", pos);
    const std::string line =
        json.substr(pos, next == std::string::npos ? std::string::npos
                                                   : next - pos);
    if (line.find("encode_ms") == std::string::npos &&
        line.find("encode_cpu_seconds") == std::string::npos) {
      if (!first) {
        out += "\\n";
      }
      first = false;
      out += line;
    }
    if (next == std::string::npos) {
      break;
    }
    pos = next + 2;
  }
  return out;
}

ObsResult RunObsFleet(int zones, int threads, SimDuration jitter = 0,
                      double loss = 0.0) {
  SystemOptions options;
  options.sharded.zones = zones;
  options.sharded.threads = threads;
  options.lan.jitter = jitter;
  options.lan.loss_probability = loss;
  EthernetSpeakerSystem system(options);
  Channel* channel = *system.CreateChannel("music");
  constexpr int kSpeakers = 5;
  for (int i = 0; i < kSpeakers; ++i) {
    SpeakerOptions speaker_options;
    speaker_options.name = "es" + std::to_string(i);
    // Speaker 4 cannot decode in realtime: lateness grows without bound
    // and its deadline-miss alert eventually fires.
    speaker_options.decode_speed_factor = i == kSpeakers - 1 ? 1.25 : 0.05;
    (void)*system.AddSpeaker(speaker_options, channel->group);
  }
  // Tick at 101 ms and flush at 251 ms — off the kernel's 100 ms
  // audio-block grid. At a collision instant the classic in-queue task
  // runs before same-instant events armed after it, while the
  // barrier-driven sharded tick observes the fully settled instant; both
  // are deterministic, but they are different conventions. Off-grid
  // periods never collide within the run, making the comparison exact
  // (see DESIGN.md, "Sharded observability").
  SpanPlaneOptions span_options;
  span_options.flush_period = Milliseconds(251);
  HealthOptions health_options;
  health_options.sampler.period = Milliseconds(101);
  // Spans before health: at coincident flush/sample instants the classic
  // event queue runs the (earlier-armed) flush first, and the collector
  // fires driven callbacks in registration order — keep the two aligned.
  SpanPlane* spans = system.EnableSpanTracing(span_options);
  EthernetSpeakerSystem::HealthRuleDefaults rules;
  // The barrier-stall rule watches wall-clock waits — not comparable
  // across runs. Everything else stays on.
  rules.runtime_rules = false;
  HealthMonitor* health = system.EnableHealthMonitoring(health_options, rules);
  EXPECT_NE(spans, nullptr);
  EXPECT_NE(health, nullptr);
  PlayerAppOptions player_options;
  player_options.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(11),
                               player_options)
                  .ok());
  system.RunUntil(Milliseconds(1500));
  system.lan()->set_bandwidth_bps(1e6);
  system.RunUntil(Milliseconds(2500));
  system.lan()->set_bandwidth_bps(100e6);
  system.RunUntil(Seconds(3));
  spans->Drain();

  ObsResult result;
  result.base = CollectResult(system);
  for (const SpanRecorder* recorder : spans->recorders()) {
    result.recorders.push_back(
        {recorder->station(), recorder->appended(), recorder->dropped()});
    for (const Span& span : recorder->spans()) {
      result.spans.push_back({span.trace_id, span.stream_id, span.seq,
                              static_cast<uint8_t>(span.stage), span.flags,
                              span.station, span.start, span.end});
    }
  }
  std::sort(result.spans.begin(), result.spans.end());
  for (const AlertTransition& t : health->engine()->log()) {
    result.alerts.push_back(
        {t.rule, t.firing, t.observed, t.threshold, t.at});
  }
  result.status = health->StatusText();
  for (const Postmortem& p : health->recorder()->postmortems()) {
    result.postmortems.push_back({p.rule, ScrubHostMetrics(p.json)});
  }
  result.ticks = health->sampler()->ticks();
  for (const TraceEvent& e : system.tracer()->events()) {
    result.mirror.push_back({e.recorded, e.at, e.stream_id, e.seq,
                             static_cast<uint8_t>(e.stage), e.node});
  }
  std::sort(result.mirror.begin(), result.mirror.end());
  EXPECT_EQ(system.tracer()->dropped(), 0u);
  if (system.is_sharded()) {
    EXPECT_EQ(system.zone_collector()->merge_lost(), 0u);
  }
  return result;
}

void ExpectObsIdentical(const ObsResult& a, const ObsResult& b) {
  ExpectIdentical(a.base, b.base);
  EXPECT_EQ(a.recorders, b.recorders);
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.alerts, b.alerts);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.ticks, b.ticks);
  EXPECT_EQ(a.mirror, b.mirror);
  ASSERT_EQ(a.postmortems.size(), b.postmortems.size());
  for (size_t i = 0; i < a.postmortems.size(); ++i) {
    EXPECT_EQ(a.postmortems[i].first, b.postmortems[i].first);
    EXPECT_EQ(a.postmortems[i].second, b.postmortems[i].second)
        << "postmortem " << i << " (" << a.postmortems[i].first
        << ") diverged";
  }
}

TEST(ShardedDeterminismTest, ObservabilityPlanesAreBitIdentical) {
  ObsResult classic = RunObsFleet(/*zones=*/1, /*threads=*/1);
  ObsResult sharded = RunObsFleet(/*zones=*/4, /*threads=*/2);
  // The scenario produced real observability output to compare.
  EXPECT_GT(classic.spans.size(), 0u);
  EXPECT_GT(classic.alerts.size(), 0u);
  EXPECT_GT(classic.postmortems.size(), 0u);
  EXPECT_GT(classic.ticks, 0u);
  ExpectObsIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, ObservabilityStaysBitIdenticalUnderJitterLoss) {
  const SimDuration jitter = Microseconds(200);
  const double loss = 0.01;
  ObsResult classic = RunObsFleet(1, 1, jitter, loss);
  ObsResult sharded = RunObsFleet(4, 2, jitter, loss);
  EXPECT_GT(classic.base.lan.deliveries_lost, 0u);  // Loss actually drew.
  ExpectObsIdentical(classic, sharded);
}

TEST(ShardedDeterminismTest, ZonePlacementRoundRobinsAndBlocks) {
  {
    SystemOptions options;
    options.sharded.zones = 3;
    EthernetSpeakerSystem system(options);
    Channel* channel = *system.CreateChannel("music");
    for (int i = 0; i < 6; ++i) {
      (void)*system.AddSpeaker(SpeakerOptions{}, channel->group);
    }
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(system.ZoneOf(static_cast<size_t>(i)), i % 3);
    }
  }
  {
    SystemOptions options;
    options.sharded.zones = 3;
    options.sharded.speakers_per_zone = 2;
    EthernetSpeakerSystem system(options);
    Channel* channel = *system.CreateChannel("music");
    for (int i = 0; i < 6; ++i) {
      (void)*system.AddSpeaker(SpeakerOptions{}, channel->group);
    }
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(system.ZoneOf(static_cast<size_t>(i)), i / 2);
    }
  }
}

}  // namespace
}  // namespace espk
