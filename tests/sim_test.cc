#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/simulation.h"

namespace espk {
namespace {

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(sim.now(), Milliseconds(30));
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime fired = -1;
  sim.ScheduleAt(Seconds(1), [&] {
    sim.ScheduleAfter(Milliseconds(500), [&] { fired = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, Seconds(1) + Milliseconds(500));
}

TEST(SimulationTest, PastTimesClampToNow) {
  Simulation sim;
  SimTime fired = -1;
  sim.ScheduleAt(Seconds(2), [&] {
    sim.ScheduleAt(Seconds(1), [&] { fired = sim.now(); });  // In the past.
  });
  sim.Run();
  EXPECT_EQ(fired, Seconds(2));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  auto handle = sim.ScheduleAt(Seconds(1), [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(handle));
  sim.Run();
  EXPECT_FALSE(ran);
  // Double-cancel is a no-op.
  EXPECT_FALSE(sim.Cancel(handle));
}

TEST(SimulationTest, CancelReleasesCapturedStateImmediately) {
  // Callbacks live out-of-line from the event queue, so Cancel must destroy
  // the callback — and anything it captured — at cancel time, not when the
  // stale queue entry eventually pops. A buffered packet cancelled out of a
  // pipeline would otherwise pin its payload until the deadline passes.
  Simulation sim;
  auto payload = std::make_shared<std::vector<uint8_t>>(4096, 0xAB);
  std::weak_ptr<std::vector<uint8_t>> watcher = payload;
  auto handle = sim.ScheduleAt(Seconds(100), [payload] {
    ASSERT_FALSE(payload->empty());  // Never runs.
  });
  payload.reset();
  EXPECT_FALSE(watcher.expired());  // The pending event keeps it alive.
  EXPECT_TRUE(sim.Cancel(handle));
  EXPECT_TRUE(watcher.expired());   // Freed at cancel, before the sim runs.
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_EQ(sim.now(), 0);  // The cancelled stub must not advance the clock.
}

TEST(SimulationTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulation sim;
  sim.RunUntil(Seconds(5));
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(SimulationTest, RunUntilDoesNotRunLaterEvents) {
  Simulation sim;
  bool early = false;
  bool late = false;
  sim.ScheduleAt(Seconds(1), [&] { early = true; });
  sim.ScheduleAt(Seconds(10), [&] { late = true; });
  sim.RunUntil(Seconds(5));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), Seconds(5));
  sim.Run();
  EXPECT_TRUE(late);
}

TEST(SimulationTest, RunForIsRelative) {
  Simulation sim;
  sim.RunUntil(Seconds(2));
  sim.RunFor(Seconds(3));
  EXPECT_EQ(sim.now(), Seconds(5));
}

TEST(SimulationTest, EventsProcessedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) {
    sim.ScheduleAfter(Milliseconds(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulationTest, CascadingEventsAtSameInstant) {
  // An event scheduling another event at the same instant must run it in the
  // same Run() — the LAN delivery path depends on this.
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(0, recurse);
    }
  };
  sim.ScheduleAt(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 5);
}

TEST(PeriodicTaskTest, FiresAtFixedPeriod) {
  Simulation sim;
  std::vector<SimTime> fires;
  PeriodicTask task(&sim, Milliseconds(100),
                    [&](SimTime t) { fires.push_back(t); });
  task.Start();
  sim.RunUntil(Milliseconds(350));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], Milliseconds(100));
  EXPECT_EQ(fires[1], Milliseconds(200));
  EXPECT_EQ(fires[2], Milliseconds(300));
}

TEST(PeriodicTaskTest, FireImmediatelyOption) {
  Simulation sim;
  std::vector<SimTime> fires;
  PeriodicTask task(&sim, Milliseconds(100),
                    [&](SimTime t) { fires.push_back(t); });
  task.Start(/*fire_immediately=*/true);
  sim.RunUntil(Milliseconds(250));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], 0);
}

TEST(PeriodicTaskTest, StopHaltsFiring) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(&sim, Milliseconds(10), [&](SimTime) { ++count; });
  task.Start();
  sim.RunUntil(Milliseconds(35));
  task.Stop();
  sim.RunUntil(Milliseconds(100));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, CallbackMayStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(&sim, Milliseconds(10), [&](SimTime) {
    if (++count == 2) {
      // Stop from inside the callback; no further fires.
    }
  });
  task.Start();
  sim.RunUntil(Milliseconds(25));
  task.Stop();
  sim.RunUntil(Milliseconds(200));
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, DestructorCancelsPendingFire) {
  Simulation sim;
  int count = 0;
  {
    PeriodicTask task(&sim, Milliseconds(10), [&](SimTime) { ++count; });
    task.Start();
    sim.RunUntil(Milliseconds(15));
  }  // Destroyed with a fire pending at t=20ms.
  sim.Run();
  EXPECT_EQ(count, 1);
}

TEST(WaitQueueTest, NotifyOneWakesOldestFirst) {
  Simulation sim;
  WaitQueue wq(&sim);
  std::vector<int> woken;
  wq.Wait([&] { woken.push_back(1); });
  wq.Wait([&] { woken.push_back(2); });
  EXPECT_EQ(wq.waiter_count(), 2u);
  wq.NotifyOne();
  sim.Run();
  EXPECT_EQ(woken, std::vector<int>({1}));
  wq.NotifyOne();
  sim.Run();
  EXPECT_EQ(woken, std::vector<int>({1, 2}));
}

TEST(WaitQueueTest, NotifyAllWakesEveryone) {
  Simulation sim;
  WaitQueue wq(&sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    wq.Wait([&] { ++woken; });
  }
  wq.NotifyAll();
  sim.Run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(wq.waiter_count(), 0u);
}

TEST(WaitQueueTest, NotifyWithNoWaitersIsNoOp) {
  Simulation sim;
  WaitQueue wq(&sim);
  wq.NotifyOne();
  wq.NotifyAll();
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(WaitQueueTest, ResumptionsRunAsynchronously) {
  // A Notify inside an event must not run the waiter synchronously (it runs
  // as a fresh event), mirroring kernel wakeup semantics.
  Simulation sim;
  WaitQueue wq(&sim);
  bool waiter_ran = false;
  bool flag_after_notify = false;
  wq.Wait([&] {
    waiter_ran = true;
    EXPECT_TRUE(flag_after_notify);
  });
  sim.ScheduleAt(Seconds(1), [&] {
    wq.NotifyAll();
    flag_after_notify = true;  // Runs before the waiter resumes.
  });
  sim.Run();
  EXPECT_TRUE(waiter_ran);
}

}  // namespace
}  // namespace espk
