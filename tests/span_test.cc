// Causal span plane tests: the exporter deriving duration spans from the
// tracer's instant events, the console-side assembler (dedup, tail
// sampling, tree parenting), exemplar-to-trace resolution, and the
// end-to-end scenario — a five-speaker fleet under a bandwidth squeeze
// whose deadline-miss exemplars resolve to retained cross-station trees
// with the tx-queue stage dominating the critical path. Everything runs on
// the simulated clock, so reports and Perfetto exports are asserted
// bit-identical across runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/json_lite.h"
#include "src/core/system.h"
#include "src/obs/federation/fleet.h"
#include "src/obs/metrics.h"
#include "src/obs/spans/assembler.h"
#include "src/obs/spans/critical_path.h"
#include "src/obs/spans/exporter.h"
#include "src/obs/spans/perfetto.h"
#include "src/obs/spans/plane.h"
#include "src/obs/spans/recorder.h"
#include "src/obs/spans/span.h"
#include "src/obs/trace.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

// ------------------------------------------------------------ Wire model --

TEST(SpanBatchTest, SerializationRoundTripIsExact) {
  SpanBatch batch;
  batch.station = "es-3";
  Span span;
  span.trace_id = PacketTraceId(2, 99);
  span.stream_id = 2;
  span.seq = 99;
  span.stage = SpanStage::kJitterDwell;
  span.flags = kSpanFlagDeadlineMiss;
  span.station = 7;
  span.start = Milliseconds(10);
  span.end = Milliseconds(12);
  batch.spans.push_back(span);
  span.stage = SpanStage::kPacket;
  span.flags = 0;
  batch.spans.push_back(span);

  Result<SpanBatch> back = SpanBatch::Deserialize(batch.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->station, "es-3");
  ASSERT_EQ(back->spans.size(), 2u);
  EXPECT_EQ(back->spans[0].trace_id, PacketTraceId(2, 99));
  EXPECT_EQ(back->spans[0].stage, SpanStage::kJitterDwell);
  EXPECT_EQ(back->spans[0].flags, kSpanFlagDeadlineMiss);
  EXPECT_EQ(back->spans[0].start, Milliseconds(10));
  EXPECT_EQ(back->spans[0].end, Milliseconds(12));
  EXPECT_EQ(back->spans[1].stage, SpanStage::kPacket);

  EXPECT_FALSE(SpanBatch::Deserialize(Bytes{1, 2, 3}).ok());
}

// -------------------------------------------------------------- Exporter --

TraceEvent Event(uint32_t seq, TraceStage stage, uint32_t node, SimTime at) {
  TraceEvent event;
  event.stream_id = 1;
  event.seq = seq;
  event.stage = stage;
  event.node = node;
  event.at = at;
  return event;
}

const Span* FindSpan(const SpanRecorder& recorder, SpanStage stage,
                     uint32_t station) {
  for (const Span& span : recorder.spans()) {
    if (span.stage == stage && span.station == station) {
      return &span;
    }
  }
  return nullptr;
}

TEST(SpanExporterTest, PairsInstantEventsIntoStageSpans) {
  // One packet, producer node 1, receiver node 2 plays it, receiver node 3
  // loses it on the wire. Every stage interval must come out with exactly
  // the event-pair endpoints, routed to the right station's recorder.
  Simulation sim;
  SpanExporter exporter(&sim, SpanExporterOptions{});
  SpanRecorder producer("rb-1", 64);
  SpanRecorder rx2("es-0", 64);
  SpanRecorder rx3("es-1", 64);
  exporter.BindStream(1, /*send_node=*/1, &producer);
  exporter.RegisterStation(2, &rx2);
  exporter.RegisterStation(3, &rx3);

  exporter.OnTraceEvent(Event(5, TraceStage::kVadWrite, 0, 100));
  exporter.OnTraceEvent(Event(5, TraceStage::kRebroadcastRead, 0, 200));
  exporter.OnTraceEvent(Event(5, TraceStage::kEncode, 0, 250));
  exporter.OnTraceEvent(Event(5, TraceStage::kMulticastSend, 1, 250));
  exporter.OnTraceEvent(Event(5, TraceStage::kWireTx, 1, 400));
  exporter.OnTraceEvent(Event(5, TraceStage::kSpeakerReceive, 2, 500));
  exporter.OnTraceEvent(Event(5, TraceStage::kLinkLoss, 3, 520));
  exporter.OnTraceEvent(Event(5, TraceStage::kDecodeStart, 2, 600));
  exporter.OnTraceEvent(Event(5, TraceStage::kDecodeDone, 2, 700));
  exporter.OnTraceEvent(Event(5, TraceStage::kPlay, 2, 800));
  EXPECT_EQ(exporter.pending_count(), 1u);
  exporter.FlushAll();
  EXPECT_EQ(exporter.pending_count(), 0u);
  EXPECT_EQ(exporter.unrouted(), 0u);

  // Producer side: vad->read, encode, tx-queue wait, and the root.
  const Span* vad_read = FindSpan(producer, SpanStage::kVadRead, 1);
  ASSERT_NE(vad_read, nullptr);
  EXPECT_EQ(vad_read->start, 100);
  EXPECT_EQ(vad_read->end, 200);
  const Span* encode = FindSpan(producer, SpanStage::kEncode, 1);
  ASSERT_NE(encode, nullptr);
  EXPECT_EQ(encode->start, 200);
  EXPECT_EQ(encode->end, 250);
  const Span* tx_queue = FindSpan(producer, SpanStage::kTxQueue, 1);
  ASSERT_NE(tx_queue, nullptr);
  EXPECT_EQ(tx_queue->start, 250);
  EXPECT_EQ(tx_queue->end, 400);
  const Span* root = FindSpan(producer, SpanStage::kPacket, 1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->trace_id, PacketTraceId(1, 5));
  EXPECT_EQ(root->start, 100);
  EXPECT_EQ(root->end, 800);
  // The root accumulates every receiver's fate: node 3's loss.
  EXPECT_EQ(root->flags, kSpanFlagLinkLoss);

  // Receiver 2: wire, dwell, decode, render slack, and its subtree root
  // spanning wire-tx start to the play verdict.
  const Span* wire = FindSpan(rx2, SpanStage::kWire, 2);
  ASSERT_NE(wire, nullptr);
  EXPECT_EQ(wire->start, 400);
  EXPECT_EQ(wire->end, 500);
  const Span* dwell = FindSpan(rx2, SpanStage::kJitterDwell, 2);
  ASSERT_NE(dwell, nullptr);
  EXPECT_EQ(dwell->start, 500);
  EXPECT_EQ(dwell->end, 600);
  const Span* decode = FindSpan(rx2, SpanStage::kDecode, 2);
  ASSERT_NE(decode, nullptr);
  EXPECT_EQ(decode->start, 600);
  EXPECT_EQ(decode->end, 700);
  const Span* slack = FindSpan(rx2, SpanStage::kRenderSlack, 2);
  ASSERT_NE(slack, nullptr);
  EXPECT_EQ(slack->start, 700);
  EXPECT_EQ(slack->end, 800);
  const Span* receive = FindSpan(rx2, SpanStage::kReceive, 2);
  ASSERT_NE(receive, nullptr);
  EXPECT_EQ(receive->start, 400);
  EXPECT_EQ(receive->end, 800);
  EXPECT_EQ(receive->flags, 0);

  // Receiver 3 got only a flagged wire span: the loss is its terminal.
  const Span* lost_wire = FindSpan(rx3, SpanStage::kWire, 3);
  ASSERT_NE(lost_wire, nullptr);
  EXPECT_EQ(lost_wire->start, 400);
  EXPECT_EQ(lost_wire->end, 520);
  EXPECT_EQ(lost_wire->flags, kSpanFlagLinkLoss);
  EXPECT_EQ(FindSpan(rx3, SpanStage::kReceive, 3), nullptr);
}

TEST(SpanExporterTest, QueueDropFinalizesTheJourneyImmediately) {
  Simulation sim;
  SpanExporter exporter(&sim, SpanExporterOptions{});
  SpanRecorder producer("rb-1", 64);
  exporter.BindStream(1, 1, &producer);

  exporter.OnTraceEvent(Event(9, TraceStage::kMulticastSend, 1, 100));
  exporter.OnTraceEvent(Event(9, TraceStage::kQueueDrop, 1, 150));
  // No flush needed: the drop is terminal for every receiver at once.
  EXPECT_EQ(exporter.pending_count(), 0u);
  const Span* tx_queue = FindSpan(producer, SpanStage::kTxQueue, 1);
  ASSERT_NE(tx_queue, nullptr);
  EXPECT_EQ(tx_queue->flags, kSpanFlagQueueDrop);
  const Span* root = FindSpan(producer, SpanStage::kPacket, 1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->flags, kSpanFlagQueueDrop);
}

// ------------------------------------------------------------- Assembler --

SpanBatch BatchOf(const std::string& station, std::vector<Span> spans) {
  SpanBatch batch;
  batch.station = station;
  batch.spans = std::move(spans);
  return batch;
}

Span MakeSpan(uint64_t trace_id, SpanStage stage, uint32_t station,
              SimTime start, SimTime end, uint8_t flags = 0) {
  Span span;
  span.trace_id = trace_id;
  span.stream_id = static_cast<uint32_t>(trace_id >> 32);
  span.seq = static_cast<uint32_t>(trace_id & 0xffffffffu);
  span.stage = stage;
  span.flags = flags;
  span.station = station;
  span.start = start;
  span.end = end;
  return span;
}

TEST(SpanAssemblerTest, AssemblesCrossStationTreeAndDedupsRescrapes) {
  TailSamplerOptions options;
  options.decision_window = Seconds(1);
  SpanAssembler assembler(options);
  const uint64_t id = PacketTraceId(1, 7);

  // Producer batch and one receiver batch: the scrape plane delivers these
  // separately, and re-delivers the producer's (rings are not drained).
  SpanBatch rb = BatchOf("rb-1", {
      MakeSpan(id, SpanStage::kPacket, 1, 0, 1000, kSpanFlagDeadlineMiss),
      MakeSpan(id, SpanStage::kVadRead, 1, 0, 100),
      MakeSpan(id, SpanStage::kTxQueue, 1, 150, 700),
  });
  SpanBatch es = BatchOf("es-0", {
      MakeSpan(id, SpanStage::kReceive, 2, 700, 1000, kSpanFlagDeadlineMiss),
      MakeSpan(id, SpanStage::kWire, 2, 700, 800),
      MakeSpan(id, SpanStage::kDecode, 2, 800, 900),
  });
  assembler.IngestBatch(rb, Milliseconds(1));
  assembler.IngestBatch(es, Milliseconds(2));
  assembler.IngestBatch(rb, Milliseconds(3));  // Rescrape.
  EXPECT_EQ(assembler.ingested(), 6u);
  EXPECT_EQ(assembler.duplicates(), 3u);

  // Idle past the decision window: the error trace must be retained.
  assembler.Flush(Milliseconds(3) + Seconds(1));
  const SpanTree* tree = assembler.FindTrace(id);
  ASSERT_NE(tree, nullptr);
  ASSERT_EQ(tree->spans.size(), 6u);
  EXPECT_TRUE(tree->has_error());
  EXPECT_EQ(tree->flags(), kSpanFlagDeadlineMiss);

  // Parenting: stage spans and the receive subtree root hang off the root;
  // the receiver's wire/decode spans hang off that station's kReceive.
  int root_index = -1;
  int receive_index = -1;
  for (size_t i = 0; i < tree->spans.size(); ++i) {
    if (tree->spans[i].stage == SpanStage::kPacket) {
      root_index = static_cast<int>(i);
    }
    if (tree->spans[i].stage == SpanStage::kReceive) {
      receive_index = static_cast<int>(i);
    }
  }
  ASSERT_GE(root_index, 0);
  ASSERT_GE(receive_index, 0);
  EXPECT_EQ(tree->parent[root_index], -1);
  EXPECT_EQ(tree->parent[receive_index], root_index);
  for (size_t i = 0; i < tree->spans.size(); ++i) {
    switch (tree->spans[i].stage) {
      case SpanStage::kVadRead:
      case SpanStage::kTxQueue:
        EXPECT_EQ(tree->parent[i], root_index);
        break;
      case SpanStage::kWire:
      case SpanStage::kDecode:
        EXPECT_EQ(tree->parent[i], receive_index);
        break;
      default:
        break;
    }
  }
  // Station names resolved from the batches that carried the spans.
  EXPECT_EQ(tree->stations[root_index], "rb-1");
  EXPECT_EQ(tree->stations[receive_index], "es-0");

  // A rescrape arriving after the decision counts as duplicates, never as a
  // fresh trace.
  assembler.IngestBatch(es, Seconds(2));
  EXPECT_EQ(assembler.duplicates(), 6u);
  EXPECT_EQ(assembler.pending_count(), 0u);
}

TEST(SpanAssemblerTest, TailSamplerKeepsErrorsAndSlowestFraction) {
  TailSamplerOptions options;
  options.decision_window = Seconds(1);
  options.keep_slowest_fraction = 0.25;
  SpanAssembler assembler(options);

  // Eight healthy traces with e2e 10ms..80ms, one deadline-miss trace that
  // is FASTER than all of them. The sampler must keep the error trace plus
  // the slowest quarter (80ms and 70ms) and discard the rest.
  for (uint32_t seq = 1; seq <= 8; ++seq) {
    const uint64_t id = PacketTraceId(1, seq);
    assembler.IngestBatch(
        BatchOf("rb-1", {MakeSpan(id, SpanStage::kPacket, 1, 0,
                                  Milliseconds(10 * seq))}),
        Milliseconds(1));
  }
  const uint64_t miss = PacketTraceId(1, 100);
  assembler.IngestBatch(
      BatchOf("rb-1", {MakeSpan(miss, SpanStage::kPacket, 1, 0,
                                Milliseconds(1), kSpanFlagDeadlineMiss)}),
      Milliseconds(1));
  assembler.Flush(Milliseconds(1) + Seconds(1));

  EXPECT_NE(assembler.FindTrace(miss), nullptr);
  EXPECT_NE(assembler.FindTrace(PacketTraceId(1, 8)), nullptr);
  EXPECT_NE(assembler.FindTrace(PacketTraceId(1, 7)), nullptr);
  for (uint32_t seq = 1; seq <= 6; ++seq) {
    EXPECT_EQ(assembler.FindTrace(PacketTraceId(1, seq)), nullptr) << seq;
  }
  EXPECT_EQ(assembler.sampler_retained(), 3u);
  EXPECT_EQ(assembler.sampler_discarded(), 6u);
}

TEST(SpanAssemblerTest, RootlessTracesCountAsOrphans) {
  // A trace whose producer-side ring was already overwritten arrives with
  // receiver spans only: no kPacket root, so it cannot be parented or
  // latency-attributed — counted and dropped, never retained.
  SpanAssembler assembler(TailSamplerOptions{});
  const uint64_t id = PacketTraceId(3, 1);
  assembler.IngestBatch(
      BatchOf("es-0", {MakeSpan(id, SpanStage::kWire, 2, 0, 100,
                                kSpanFlagLinkLoss)}),
      Milliseconds(1));
  assembler.FlushAll();
  EXPECT_EQ(assembler.orphans(), 1u);
  EXPECT_EQ(assembler.FindTrace(id), nullptr);
}

// ------------------------------------------------------------- Exemplars --

TEST(HistogramExemplarTest, ExpositionCarriesOpenMetricsExemplars) {
  Simulation sim;
  MetricsRegistry registry(&sim);
  HistogramMetric* h = registry.GetHistogram("play.lateness_ms", 0.0, 100.0,
                                             10, "lateness");
  // Without a traced observation the exposition stays byte-identical to the
  // spans-off format: no exemplar syntax at all.
  h->Observe(5.0);
  EXPECT_EQ(registry.TextExposition().find(" # {trace_id="),
            std::string::npos);

  sim.ScheduleAt(Milliseconds(250), [&] {
    h->ObserveExemplar(42.0, PacketTraceId(1, 7), sim.now());
  });
  sim.Run();
  const std::string text = registry.TextExposition();
  // OpenMetrics exemplar syntax on the bucket that captured it, with the
  // trace id rendered as the 16-hex-digit label exemplar resolution uses.
  EXPECT_NE(text.find("# {trace_id=\"0000000100000007\"} 42 250"),
            std::string::npos)
      << text;
}

// ------------------------------------------------------------ End to end --

// Five speakers, one CD-quality channel, the span plane feeding the fleet
// scrape plane. At t=6s the segment is squeezed to 1 Mbps — below the
// stream's ~1.4 Mbps — behind a deliberately deep (bufferbloat-style)
// transmit queue, so queued packets wait seconds for their wire slot
// (tx-queue wait dominates end-to-end latency) and the queue eventually
// overflows into tail drops; at t=18s bandwidth is restored.
struct SpanRunResult {
  size_t retained = 0;
  uint64_t sampler_retained = 0;
  uint64_t sampler_discarded = 0;
  uint64_t duplicates = 0;
  uint64_t ingested = 0;
  bool exemplar_resolved = false;
  bool exemplar_tree_cross_station = false;
  double exemplar_tree_tx_queue_ms = 0.0;
  double exemplar_tree_vad_read_ms = 0.0;
  std::string squeeze_dominant;
  std::string report;
  std::string report_again;
  std::string perfetto;
  bool exposition_has_exemplar = false;
  double es0_spans_recorded = 0.0;
  bool console_has_self_metrics = false;
};

SpanRunResult RunSqueezeScenario() {
  SystemOptions sys_options;
  sys_options.lan.tx_queue_limit = 512 * 1024;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  for (int i = 0; i < 5; ++i) {
    SpeakerOptions so;
    so.name = "es-" + std::to_string(i);
    so.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(so, channel->group);
  }
  // Span tracing must be on before the fleet plane is built so each scrape
  // agent picks up its station's span buffer. The scrape plane shares the
  // squeezed segment with the audio, so rings must cover the whole squeeze
  // until collection catches back up.
  SpanPlaneOptions span_options;
  span_options.recorder_capacity = 16384;
  SpanPlane* spans = system.EnableSpanTracing(span_options);
  FleetPlane plane(&system);
  plane.Start();

  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(21), opts)
                  .ok());
  system.sim()->ScheduleAt(Seconds(6), [&system] {
    system.lan()->set_bandwidth_bps(1e6);
  });
  system.sim()->ScheduleAt(Seconds(18), [&system] {
    system.lan()->set_bandwidth_bps(100e6);
  });
  system.sim()->RunUntil(Seconds(26));
  spans->Drain();

  SpanRunResult result;
  const SpanAssembler* assembler = spans->assembler();
  result.retained = assembler->RetainedTraces().size();
  result.sampler_retained = assembler->sampler_retained();
  result.sampler_discarded = assembler->sampler_discarded();
  result.duplicates = assembler->duplicates();
  result.ingested = assembler->ingested();

  // Every deadline-miss exemplar whose trace the tail sampler still holds
  // must resolve to a cross-station tree; keep the first that does.
  for (const auto& station : system.stations()) {
    if (station->name.rfind("es-", 0) != 0) {
      continue;
    }
    const Metric* metric = station->registry->Find("speaker.lateness_ms");
    if (metric == nullptr) {
      continue;
    }
    const auto* h = static_cast<const HistogramMetric*>(metric);
    for (const HistogramExemplar& exemplar : h->exemplars()) {
      if (!exemplar.valid || exemplar.value <= 0.0) {
        continue;  // Only late (deadline-missing) observations.
      }
      const SpanTree* tree = assembler->FindTrace(exemplar.trace_id);
      if (tree == nullptr || result.exemplar_resolved) {
        continue;
      }
      result.exemplar_resolved = true;
      std::set<std::string> producers;
      std::set<std::string> receivers;
      for (const std::string& name : tree->stations) {
        (name.rfind("rb-", 0) == 0 ? producers : receivers).insert(name);
      }
      result.exemplar_tree_cross_station =
          !producers.empty() && !receivers.empty();
      for (const Span& span : tree->spans) {
        if (span.stage == SpanStage::kTxQueue) {
          result.exemplar_tree_tx_queue_ms = span.duration_ms();
        }
        if (span.stage == SpanStage::kVadRead) {
          result.exemplar_tree_vad_read_ms = span.duration_ms();
        }
      }
    }
  }

  // Critical path over the squeeze window, rendered twice off the same
  // assembler state: byte-identical or the report is nondeterministic.
  CriticalPathReport report = AnalyzeCriticalPath(
      *assembler, channel->stream_id, Seconds(6), Seconds(14));
  result.squeeze_dominant = report.dominant;
  result.report = report.Render();
  result.report_again =
      AnalyzeCriticalPath(*assembler, channel->stream_id, Seconds(6),
                          Seconds(14))
          .Render();
  result.perfetto = PerfettoSpanJson(*assembler);

  result.exposition_has_exemplar =
      system.metrics()->TextExposition().find(" # {trace_id=") !=
      std::string::npos;
  if (Station* es0 = system.FindStation("es-0")) {
    if (const Metric* m = es0->registry->Find("spans.recorded")) {
      result.es0_spans_recorded = static_cast<const Gauge*>(m)->Value();
    }
  }
  result.console_has_self_metrics =
      system.metrics()->Find("spans.sampler_discarded") != nullptr &&
      system.metrics()->Find("spans.assembly_orphans") != nullptr;
  return result;
}

TEST(SpanEndToEndTest, SqueezeExemplarsResolveToRetainedTxQueueTrees) {
  SpanRunResult run = RunSqueezeScenario();

  // The plane saw real volume: spans were recorded, scraped (with rescrape
  // duplicates — rings are not drained), and tail-sampled down.
  EXPECT_GT(run.ingested, 0u);
  EXPECT_GT(run.duplicates, 0u);
  EXPECT_GT(run.sampler_discarded, 0u);
  EXPECT_GT(run.sampler_retained, 0u);
  EXPECT_GT(run.retained, 0u);
  EXPECT_LE(run.retained, TailSamplerOptions{}.max_retained);
  EXPECT_GT(run.es0_spans_recorded, 0.0);
  EXPECT_TRUE(run.console_has_self_metrics);

  // A deadline-miss exemplar on the play-latency histogram resolves to a
  // retained tree spanning the rebroadcaster and at least one speaker...
  EXPECT_TRUE(run.exemplar_resolved);
  EXPECT_TRUE(run.exemplar_tree_cross_station);
  // ...whose tx-queue wait dwarfs the other producer-side stages: the
  // squeeze moved the latency budget into the transmit queue.
  EXPECT_GT(run.exemplar_tree_tx_queue_ms, run.exemplar_tree_vad_read_ms);
  EXPECT_GT(run.exemplar_tree_tx_queue_ms, 10.0);

  // The critical path over the squeeze window names the tx-queue stage on
  // the rebroadcaster as the dominant contributor.
  EXPECT_EQ(run.squeeze_dominant.rfind("tx_queue @ rb-1", 0), 0u)
      << run.report;
  EXPECT_NE(run.report.find("tx_queue"), std::string::npos);

  // Rendering the same assembler state twice is byte-identical.
  EXPECT_EQ(run.report, run.report_again);

  // Exemplars surface in the OpenMetrics exposition, and the Perfetto
  // export carries real duration slices plus send->receive flow events.
  EXPECT_TRUE(run.exposition_has_exemplar);
  EXPECT_NE(run.perfetto.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(run.perfetto.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(run.perfetto.find("\"ph\": \"f\""), std::string::npos);
}

TEST(SpanEndToEndTest, ReportsAreBitIdenticalAcrossRuns) {
  SpanRunResult a = RunSqueezeScenario();
  SpanRunResult b = RunSqueezeScenario();
  EXPECT_EQ(a.report, b.report);
  EXPECT_EQ(a.perfetto, b.perfetto);
  EXPECT_EQ(a.retained, b.retained);
  EXPECT_EQ(a.sampler_retained, b.sampler_retained);
  EXPECT_EQ(a.sampler_discarded, b.sampler_discarded);
  EXPECT_EQ(a.ingested, b.ingested);
  EXPECT_EQ(a.squeeze_dominant, b.squeeze_dominant);
}

// ------------------------------------------------------- Sharded runtime --

// The span plane over a 4-zone, 4-thread sharded system: spans assemble
// from the barrier-merged mirror under a real multi-threaded executor (the
// TSan CI stage runs this), and the Perfetto export splices the collector's
// runtime epoch slices into the same timeline as the span trees.
TEST(SpanEndToEndTest, ShardedPlaneAssemblesOverMergedMirror) {
  SystemOptions sys_options;
  sys_options.sharded.zones = 4;
  sys_options.sharded.threads = 4;
  EthernetSpeakerSystem system(sys_options);
  RebroadcasterOptions rb;
  rb.codec_override = CodecId::kRaw;
  Channel* channel = *system.CreateChannel("music", rb);
  for (int i = 0; i < 8; ++i) {
    SpeakerOptions so;
    so.name = "es-" + std::to_string(i);
    so.decode_speed_factor = 0.05;
    (void)*system.AddSpeaker(so, channel->group);
  }
  SpanPlane* spans = system.EnableSpanTracing();
  ASSERT_NE(spans, nullptr);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  EXPECT_TRUE(system
                  .StartPlayer(channel,
                               std::make_unique<MusicLikeGenerator>(21), opts)
                  .ok());
  system.RunUntil(Seconds(2));
  spans->Drain();

  const SpanAssembler* assembler = spans->assembler();
  EXPECT_GT(assembler->ingested(), 0u);
  ASSERT_GT(assembler->RetainedTraces().size(), 0u);
  // Trees cross stations exactly as in a classic run: a producer span plus
  // receiver spans from speakers homed on different zones.
  bool cross_station = false;
  for (const SpanTree* tree : assembler->RetainedTraces()) {
    std::set<std::string> producers;
    std::set<std::string> receivers;
    for (const std::string& name : tree->stations) {
      (name.rfind("rb-", 0) == 0 ? producers : receivers).insert(name);
    }
    cross_station =
        cross_station || (!producers.empty() && !receivers.empty());
  }
  EXPECT_TRUE(cross_station);

  ZoneCollector* collector = system.zone_collector();
  ASSERT_NE(collector, nullptr);
  EXPECT_GT(collector->barriers_seen(), 0u);
  EXPECT_EQ(collector->merge_lost(), 0u);
  EXPECT_FALSE(collector->epoch_slices().empty());
  const std::string json =
      PerfettoSpanJson(*assembler, RuntimePerfettoEvents(*collector));
  EXPECT_TRUE(CheckJsonSyntax(json).ok());
  EXPECT_NE(json.find("\"cat\": \"runtime\""), std::string::npos);
}

}  // namespace
}  // namespace espk
