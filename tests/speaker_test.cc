// Unit tests for the Ethernet Speaker internals: the output recorder, the
// speaker state machine driven by hand-crafted datagrams (no producer
// needed), and the §5.2 auto-volume controller.
#include <gtest/gtest.h>

#include "src/audio/analysis.h"
#include "src/audio/generator.h"
#include "src/audio/sample_convert.h"
#include "src/lan/segment.h"
#include "src/speaker/auto_volume.h"
#include "src/speaker/playback.h"
#include "src/speaker/speaker.h"

namespace espk {
namespace {

// --------------------------------------------------------- OutputRecorder --

TEST(OutputRecorderTest, RenderPlacesSegmentsAtTheirTimes) {
  OutputRecorder rec(8000, 1);
  rec.Play(Milliseconds(100), {0.5f, 0.5f}, 1.0f);
  // Render 200 ms starting at t=0: samples land at frame 800.
  std::vector<float> out = rec.Render(0, Milliseconds(200));
  ASSERT_EQ(out.size(), 1600u);
  EXPECT_EQ(out[799], 0.0f);
  EXPECT_EQ(out[800], 0.5f);
  EXPECT_EQ(out[801], 0.5f);
  EXPECT_EQ(out[802], 0.0f);
}

TEST(OutputRecorderTest, GainAppliedAtPlayTime) {
  OutputRecorder rec(8000, 1);
  rec.Play(0, {1.0f}, 0.25f);
  std::vector<float> out = rec.Render(0, Milliseconds(1));
  EXPECT_FLOAT_EQ(out[0], 0.25f);
}

TEST(OutputRecorderTest, CountGapsFindsDropouts) {
  OutputRecorder rec(8000, 1);
  // 100 ms of audio, 50 ms gap, 100 ms of audio.
  std::vector<float> chunk(800, 0.1f);
  rec.Play(0, chunk, 1.0f);
  rec.Play(Milliseconds(150), chunk, 1.0f);
  rec.Play(Milliseconds(250), chunk, 1.0f);  // Back-to-back: no gap.
  EXPECT_EQ(rec.CountGaps(Milliseconds(5)), 1);
  EXPECT_EQ(rec.TotalGapTime(), Milliseconds(50));
}

TEST(OutputRecorderTest, RecentRmsSeesOnlyTheWindow) {
  OutputRecorder rec(8000, 1);
  rec.Play(0, std::vector<float>(800, 0.8f), 1.0f);                  // Loud.
  rec.Play(Milliseconds(500), std::vector<float>(800, 0.01f), 1.0f); // Quiet.
  double recent = rec.RecentRms(Milliseconds(650), Milliseconds(100));
  EXPECT_NEAR(recent, 0.01, 0.002);
}

TEST(OutputRecorderTest, BoundariesOfRenderWindow) {
  OutputRecorder rec(8000, 2);
  rec.Play(Milliseconds(10), {1.0f, -1.0f, 0.5f, -0.5f}, 1.0f);
  // Window entirely before the segment: silence.
  std::vector<float> before = rec.Render(0, Milliseconds(5));
  EXPECT_EQ(Peak(before), 0.0);
  // Window entirely after: silence.
  std::vector<float> after = rec.Render(Milliseconds(100), Milliseconds(5));
  EXPECT_EQ(Peak(after), 0.0);
}

TEST(OutputRecorderTest, EmptyStateAccessors) {
  OutputRecorder rec(44100, 2);
  EXPECT_EQ(rec.first_start(), -1);
  EXPECT_EQ(rec.last_end(), -1);
  EXPECT_EQ(rec.CountGaps(0), 0);
  EXPECT_EQ(rec.RecentRms(Seconds(1), Seconds(1)), 0.0);
}

// ------------------------------------------- Speaker fed crafted packets --

class SpeakerHarness {
 public:
  explicit SpeakerHarness(SpeakerOptions options = {})
      : segment_(&sim_, SegmentConfig{}),
        nic_(segment_.CreateNic()),
        speaker_(&sim_, nic_.get(), std::move(options)) {
    (void)speaker_.Tune(kFirstChannelGroup);
  }

  void Deliver(const Packet& packet, const Bytes& auth = {}) {
    DeliverTo(kFirstChannelGroup, packet, auth);
  }

  void DeliverTo(GroupId group, const Packet& packet, const Bytes& auth = {}) {
    Datagram d;
    d.group = group;
    d.payload = SerializePacket(packet, auth);
    speaker_.HandleDatagram(d);
  }

  ControlPacket MakeControl(SimTime producer_clock, uint32_t stream_id = 1) {
    ControlPacket control;
    control.stream_id = stream_id;
    control.control_seq = 1;
    control.producer_clock = producer_clock;
    control.config = config_;
    control.codec = CodecId::kRaw;
    return control;
  }

  DataPacket MakeData(uint32_t seq, SimTime deadline, int64_t frames,
                      uint32_t stream_id = 1) {
    DataPacket data;
    data.stream_id = stream_id;
    data.seq = seq;
    data.play_deadline = deadline;
    data.frame_count = static_cast<uint32_t>(frames);
    SineGenerator gen(440.0);
    data.payload = gen.GenerateBytes(frames, config_);
    return data;
  }

  Simulation sim_;
  EthernetSegment segment_;
  std::unique_ptr<SimNic> nic_;
  AudioConfig config_{8000, 1, AudioEncoding::kLinearS16};
  EthernetSpeaker speaker_;
};

TEST(SpeakerTest, DataBeforeControlIsDropped) {
  SpeakerHarness h;
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  EXPECT_EQ(h.speaker_.stats().waiting_drops, 1u);
  EXPECT_FALSE(h.speaker_.ready());
}

TEST(SpeakerTest, ControlThenDataPlaysAtDeadline) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(/*producer_clock=*/0));
  ASSERT_TRUE(h.speaker_.ready());
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  h.sim_.RunUntil(Milliseconds(99));
  EXPECT_EQ(h.speaker_.stats().chunks_played, 0u);  // Sleeping until time.
  h.sim_.RunUntil(Milliseconds(101));
  EXPECT_EQ(h.speaker_.stats().chunks_played, 1u);
  EXPECT_EQ(h.speaker_.output()->first_start(), Milliseconds(100));
}

TEST(SpeakerTest, ClockOffsetMapsProducerDeadlines) {
  // The speaker's clock reads 5 s when the producer's reads 0: the offset
  // is learned from the control packet and applied to every deadline.
  SpeakerHarness h;
  h.sim_.RunUntil(Seconds(5));
  h.Deliver(h.MakeControl(/*producer_clock=*/0));
  h.Deliver(h.MakeData(0, /*deadline=*/Milliseconds(100), 800));
  h.sim_.RunUntil(Seconds(5) + Milliseconds(150));
  EXPECT_EQ(h.speaker_.stats().chunks_played, 1u);
  EXPECT_EQ(h.speaker_.output()->first_start(),
            Seconds(5) + Milliseconds(100));
}

TEST(SpeakerTest, LateWithinEpsilonPlaysImmediately) {
  SpeakerOptions options;
  options.sync_epsilon = Milliseconds(20);
  options.decode_speed_factor = 0.0;
  SpeakerHarness h(options);
  h.Deliver(h.MakeControl(0));
  h.sim_.RunUntil(Milliseconds(110));  // 10 ms past the deadline.
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  h.sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(h.speaker_.stats().chunks_played, 1u);
  EXPECT_EQ(h.speaker_.stats().late_drops, 0u);
  EXPECT_GT(h.speaker_.stats().total_lateness_ns, 0);
}

TEST(SpeakerTest, LateBeyondEpsilonIsDiscarded) {
  SpeakerOptions options;
  options.sync_epsilon = Milliseconds(20);
  options.decode_speed_factor = 0.0;
  SpeakerHarness h(options);
  h.Deliver(h.MakeControl(0));
  h.sim_.RunUntil(Milliseconds(200));  // 100 ms past the deadline.
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  h.sim_.RunFor(Milliseconds(1));
  EXPECT_EQ(h.speaker_.stats().chunks_played, 0u);
  EXPECT_EQ(h.speaker_.stats().late_drops, 1u);
}

TEST(SpeakerTest, DuplicateSequenceDropped) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  h.Deliver(h.MakeData(5, Milliseconds(100), 800));
  h.Deliver(h.MakeData(5, Milliseconds(100), 800));  // Replay.
  EXPECT_EQ(h.speaker_.stats().duplicate_drops, 1u);
}

TEST(SpeakerTest, CorruptDatagramCountedNotCrashed) {
  SpeakerHarness h;
  Datagram d;
  d.group = kFirstChannelGroup;
  d.payload = {1, 2, 3, 4, 5};
  h.speaker_.HandleDatagram(d);
  EXPECT_EQ(h.speaker_.stats().bad_packets, 1u);
}

TEST(SpeakerTest, JitterBufferOverflowDropsExcess) {
  SpeakerOptions options;
  options.jitter_buffer_bytes = 16000;  // ~4000 mono float samples.
  options.decode_speed_factor = 0.0;
  SpeakerHarness h(options);
  h.Deliver(h.MakeControl(0));
  // Flood with future-deadline chunks: 800 frames = 3200 bytes decoded.
  for (uint32_t i = 0; i < 20; ++i) {
    h.Deliver(h.MakeData(i, Seconds(10) + Milliseconds(100 * i), 800));
  }
  EXPECT_GT(h.speaker_.stats().overflow_drops, 0u);
  EXPECT_LE(h.speaker_.stats().data_packets -
                h.speaker_.stats().overflow_drops,
            5u + 1u);
}

TEST(SpeakerTest, DecodeErrorCounted) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  DataPacket bad = h.MakeData(0, Milliseconds(100), 800);
  // Truncate by one byte: no longer a whole frame count (raw codec).
  bad.payload = bad.payload.Subslice(0, bad.payload.size() - 1);
  h.Deliver(bad);
  // The payload rides the pipeline as a slice; the decode (and its failure)
  // happens when the serialized decode stage completes.
  h.sim_.Run();
  EXPECT_EQ(h.speaker_.stats().decode_errors, 1u);
}

TEST(SpeakerTest, RetuneResetsChannelState) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  ASSERT_TRUE(h.speaker_.ready());
  ASSERT_TRUE(h.speaker_.Tune(kFirstChannelGroup + 1).ok());
  EXPECT_FALSE(h.speaker_.ready());
  EXPECT_FALSE(h.nic_->IsJoined(kFirstChannelGroup));
  EXPECT_TRUE(h.nic_->IsJoined(kFirstChannelGroup + 1));
}

TEST(SpeakerTest, UntuneWithoutTuneFails) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto nic = segment.CreateNic();
  EthernetSpeaker speaker(&sim, nic.get(), SpeakerOptions{});
  EXPECT_FALSE(speaker.Untune().ok());
}

TEST(SpeakerTest, AuthVerifierGatesEverything) {
  SpeakerOptions options;
  options.auth_verifier = [](const ParsedPacket&) { return false; };
  SpeakerHarness h(options);
  h.Deliver(h.MakeControl(0));
  EXPECT_FALSE(h.speaker_.ready());
  EXPECT_EQ(h.speaker_.stats().auth_rejected, 1u);
}

TEST(SpeakerTest, ConfigChangeMidStreamSwitchesDecoder) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  h.Deliver(h.MakeData(0, Milliseconds(50), 800));
  h.sim_.RunUntil(Milliseconds(60));
  // New control packet with a different config and bumped control_seq.
  ControlPacket control = h.MakeControl(h.sim_.now());
  control.control_seq = 2;
  control.config = AudioConfig{16000, 1, AudioEncoding::kLinearS16};
  h.Deliver(control);
  ASSERT_TRUE(h.speaker_.ready());
  EXPECT_EQ(h.speaker_.config()->sample_rate, 16000);
  // Output epoch restarted.
  EXPECT_EQ(h.speaker_.output()->segments().size(), 0u);
}

// ------------------------------------------- Multi-stream subscriptions --

TEST(SpeakerTest, SubscribeTwiceFails) {
  SpeakerHarness h;  // The harness ctor already tuned to kFirstChannelGroup.
  Status s = h.speaker_.Subscribe(kFirstChannelGroup);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(SpeakerTest, UnsubscribeWithoutSubscriptionFails) {
  SpeakerHarness h;
  Status s = h.speaker_.Unsubscribe(kFirstChannelGroup + 9);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SpeakerTest, ConcurrentSubscriptionsKeepStreamsSeparate) {
  SpeakerHarness h;
  const GroupId g2 = kFirstChannelGroup + 1;
  ASSERT_TRUE(h.speaker_.Subscribe(g2).ok());
  EXPECT_TRUE(h.nic_->IsJoined(kFirstChannelGroup));
  EXPECT_TRUE(h.nic_->IsJoined(g2));
  // Two producers, one per group, each with its own stream id.
  h.Deliver(h.MakeControl(0));
  h.DeliverTo(g2, h.MakeControl(0, /*stream_id=*/2));
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  h.DeliverTo(g2, h.MakeData(0, Milliseconds(100), 800, /*stream_id=*/2));
  h.sim_.RunUntil(Milliseconds(200));
  // Aggregate stats sum across sessions; per-session stats stay separate.
  EXPECT_EQ(h.speaker_.stats().chunks_played, 2u);
  ASSERT_NE(h.speaker_.session(kFirstChannelGroup), nullptr);
  ASSERT_NE(h.speaker_.session(g2), nullptr);
  EXPECT_EQ(h.speaker_.session(kFirstChannelGroup)->stats().chunks_played,
            1u);
  EXPECT_EQ(h.speaker_.session(g2)->stats().chunks_played, 1u);
  // The legacy single-stream accessors keep exposing the first subscription.
  EXPECT_EQ(h.speaker_.tuned_group(), kFirstChannelGroup);
  EXPECT_EQ(h.speaker_.output(),
            h.speaker_.session(kFirstChannelGroup)->output());
}

TEST(SpeakerTest, RenderMixSumsConcurrentStreams) {
  SpeakerHarness h;
  const GroupId g2 = kFirstChannelGroup + 1;
  ASSERT_TRUE(h.speaker_.Subscribe(g2).ok());
  h.Deliver(h.MakeControl(0));
  h.DeliverTo(g2, h.MakeControl(0, /*stream_id=*/2));
  // Identical sine chunks with identical deadlines: the mix is exactly 2x.
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  h.DeliverTo(g2, h.MakeData(0, Milliseconds(100), 800, /*stream_id=*/2));
  h.sim_.RunUntil(Milliseconds(250));
  std::vector<float> solo = h.speaker_.session(kFirstChannelGroup)
                                ->output()
                                ->Render(Milliseconds(100), Milliseconds(100));
  std::vector<float> mix =
      h.speaker_.RenderMix(Milliseconds(100), Milliseconds(100));
  ASSERT_EQ(mix.size(), solo.size());
  ASSERT_GT(Peak(solo), 0.0);
  EXPECT_NEAR(Peak(mix), 2.0 * Peak(solo), 1e-4);
}

TEST(SpeakerTest, UnsubscribeMidFlightDropsPipelineObligations) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));  // Decode in flight.
  ASSERT_TRUE(h.speaker_.Unsubscribe(kFirstChannelGroup).ok());
  EXPECT_TRUE(h.speaker_.subscriptions().empty());
  h.sim_.Run();  // The orphaned decode completes as a no-op.
  EXPECT_EQ(h.speaker_.stats().chunks_played, 0u);
  EXPECT_EQ(h.speaker_.queued_pcm_bytes(), 0u);
}

TEST(SpeakerTest, ResubscribeStartsAFreshSession) {
  SpeakerHarness h;
  h.Deliver(h.MakeControl(0));
  h.Deliver(h.MakeData(0, Milliseconds(100), 800));
  ASSERT_TRUE(h.speaker_.Unsubscribe(kFirstChannelGroup).ok());
  ASSERT_TRUE(h.speaker_.Subscribe(kFirstChannelGroup).ok());
  // The reincarnated session has not seen a control packet, and the stale
  // in-flight decode belongs to the dead epoch.
  EXPECT_FALSE(h.speaker_.ready());
  h.sim_.Run();
  EXPECT_EQ(h.speaker_.stats().chunks_played, 0u);
}

TEST(SpeakerTest, TuneDropsEveryCurrentSubscription) {
  SpeakerHarness h;
  ASSERT_TRUE(h.speaker_.Subscribe(kFirstChannelGroup + 1).ok());
  ASSERT_TRUE(h.speaker_.Tune(kFirstChannelGroup + 2).ok());
  ASSERT_EQ(h.speaker_.subscriptions().size(), 1u);
  EXPECT_EQ(h.speaker_.subscriptions()[0], kFirstChannelGroup + 2);
  EXPECT_FALSE(h.nic_->IsJoined(kFirstChannelGroup));
  EXPECT_FALSE(h.nic_->IsJoined(kFirstChannelGroup + 1));
  EXPECT_TRUE(h.nic_->IsJoined(kFirstChannelGroup + 2));
}

TEST(SpeakerTest, TrafficOnUnsubscribedGroupIsIgnored) {
  SpeakerHarness h;
  const GroupId stray = kFirstChannelGroup + 7;
  h.DeliverTo(stray, h.MakeControl(0, /*stream_id=*/9));
  EXPECT_FALSE(h.speaker_.ready());
  h.DeliverTo(stray, h.MakeData(0, Milliseconds(100), 800, /*stream_id=*/9));
  h.sim_.Run();
  EXPECT_EQ(h.speaker_.stats().chunks_played, 0u);
}

// ------------------------------------------------------------ AutoVolume --

class AutoVolumeHarness {
 public:
  AutoVolumeHarness() : h_() {
    h_.Deliver(h_.MakeControl(0));
  }

  // Feeds `seconds` of tone at constant source level, ticking playback.
  void PlayTone(double seconds, float amplitude) {
    auto frames = static_cast<int64_t>(seconds * 8000);
    int64_t done = 0;
    uint32_t seq = next_seq_;
    while (done < frames) {
      int64_t n = std::min<int64_t>(800, frames - done);
      DataPacket data;
      data.stream_id = 1;
      data.seq = seq++;
      data.play_deadline = h_.sim_.now() + Milliseconds(50) +
                           FramesToDuration(done, 8000);
      data.frame_count = static_cast<uint32_t>(n);
      SineGenerator gen(440.0, amplitude);
      data.payload = gen.GenerateBytes(n, h_.config_);
      h_.Deliver(data);
      done += n;
    }
    next_seq_ = seq;
    h_.sim_.RunFor(Seconds(static_cast<int64_t>(seconds)) +
                   Milliseconds(100));
  }

  SpeakerHarness h_;
  uint32_t next_seq_ = 0;
};

TEST(AutoVolumeTest, GainRisesWithAmbientNoise) {
  AutoVolumeHarness harness;
  double ambient_level = 0.01;
  AutoVolumeOptions options;
  options.mode = VolumeMode::kBackgroundMusic;
  AutoVolumeController controller(
      &harness.h_.speaker_, [&](SimTime) { return ambient_level; }, options);
  controller.Start();

  harness.PlayTone(4.0, 0.3f);
  float quiet_gain = harness.h_.speaker_.gain();

  ambient_level = 0.08;  // The room gets loud.
  harness.PlayTone(4.0, 0.3f);
  float loud_gain = harness.h_.speaker_.gain();

  EXPECT_GT(loud_gain, quiet_gain * 2.0f);
  EXPECT_GE(controller.history().size(), 8u);
}

TEST(AutoVolumeTest, AnnouncementModeIsLouderThanMusicMode) {
  auto run = [](VolumeMode mode) {
    AutoVolumeHarness harness;
    AutoVolumeOptions options;
    options.mode = mode;
    AutoVolumeController controller(
        &harness.h_.speaker_, [](SimTime) { return 0.02; }, options);
    controller.Start();
    harness.PlayTone(5.0, 0.3f);
    return harness.h_.speaker_.gain();
  };
  float music = run(VolumeMode::kBackgroundMusic);
  float announcement = run(VolumeMode::kAnnouncement);
  EXPECT_GT(announcement, music * 2.0f);
}

TEST(AutoVolumeTest, EqualizesSourcesMasteredAtDifferentLevels) {
  // §5.2: "audio segments recorded at different volume levels produce the
  // same sound levels".
  auto output_level_for_source = [](float amplitude) {
    AutoVolumeHarness harness;
    AutoVolumeOptions options;
    AutoVolumeController controller(
        &harness.h_.speaker_, [](SimTime) { return 0.02; }, options);
    controller.Start();
    harness.PlayTone(6.0, amplitude);
    // Acoustic level near the end of the run.
    return harness.h_.speaker_.output()->RecentRms(harness.h_.sim_.now(),
                                                   Milliseconds(500));
  };
  double quiet_master = output_level_for_source(0.1f);
  double loud_master = output_level_for_source(0.6f);
  ASSERT_GT(quiet_master, 0.0);
  EXPECT_NEAR(loud_master / quiet_master, 1.0, 0.25);
}

TEST(AutoVolumeTest, SilenceDoesNotSlewTheGain) {
  AutoVolumeHarness harness;
  AutoVolumeOptions options;
  AutoVolumeController controller(
      &harness.h_.speaker_, [](SimTime) { return 0.05; }, options);
  controller.Start();
  float initial = harness.h_.speaker_.gain();
  harness.h_.sim_.RunFor(Seconds(5));  // Nothing playing.
  EXPECT_FLOAT_EQ(harness.h_.speaker_.gain(), initial);
}

TEST(AutoVolumeTest, GainStaysWithinConfiguredBounds) {
  AutoVolumeHarness harness;
  AutoVolumeOptions options;
  options.max_gain = 2.0f;
  options.min_gain = 0.2f;
  AutoVolumeController controller(
      &harness.h_.speaker_, [](SimTime) { return 0.5; },  // Very loud room.
      options);
  controller.Start();
  harness.PlayTone(5.0, 0.05f);  // Very quiet source.
  EXPECT_LE(harness.h_.speaker_.gain(), 2.0f);
}

}  // namespace
}  // namespace espk
