// SpscQueue (src/base/spsc_queue.h): single-thread semantics, wrap-around,
// element lifetime, and a cross-thread stress pass. The stress test is the
// one the CI thread-sanitizer stage exists for: under TSan any missing
// acquire/release edge on the indices shows up as a data race on the slot
// payloads.
#include "src/base/spsc_queue.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace espk {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscQueue<int>(1024).capacity(), 1024u);
}

TEST(SpscQueueTest, PushPopFifoAndEmpty) {
  SpscQueue<int> q(4);
  int out = -1;
  EXPECT_TRUE(q.EmptyApprox());
  EXPECT_FALSE(q.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(int{i}));
  }
  EXPECT_EQ(q.SizeApprox(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
}

TEST(SpscQueueTest, FullRingRefusesWithoutClobbering) {
  SpscQueue<std::string> q(2);
  ASSERT_TRUE(q.TryPush(std::string("a")));
  ASSERT_TRUE(q.TryPush(std::string("b")));
  std::string rejected = "c";
  EXPECT_FALSE(q.TryPush(std::move(rejected)));
  EXPECT_EQ(rejected, "c");  // A refused push must leave the value intact.
  std::string out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "a");
  // The freed slot is reusable immediately.
  EXPECT_TRUE(q.TryPush(std::string("c")));
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "b");
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, "c");
}

TEST(SpscQueueTest, IndicesWrapAroundTheRing) {
  SpscQueue<uint64_t> q(4);
  uint64_t out = 0;
  // Keep 3 of 4 slots resident while pushing/popping far more than the
  // capacity, so the masked indices lap the ring many times; FIFO order
  // must survive every lap.
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.TryPush(uint64_t{i}));
  }
  for (uint64_t i = 3; i < 1000; ++i) {
    ASSERT_TRUE(q.TryPush(uint64_t{i}));
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i - 3);
  }
}

TEST(SpscQueueTest, TryEmplaceConstructsInPlace) {
  SpscQueue<std::pair<int, std::string>> q(2);
  ASSERT_TRUE(q.TryEmplace(7, "seven"));
  std::pair<int, std::string> out;
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out.first, 7);
  EXPECT_EQ(out.second, "seven");
}

TEST(SpscQueueTest, DestructorDrainsRemainingElements) {
  auto token = std::make_shared<int>(42);
  {
    SpscQueue<std::shared_ptr<int>> q(8);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(q.TryPush(std::shared_ptr<int>(token)));
    }
    std::shared_ptr<int> out;
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(token.use_count(), 6);  // token + out + 4 still in the ring.
  }  // Ring destroyed with 4 live elements.
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SpscQueueTest, OccupancyFromProducerTracksRingFill) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.OccupancyFromProducer(), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.TryPush(int{i}));
    EXPECT_EQ(q.OccupancyFromProducer(), static_cast<size_t>(i) + 1);
  }
  int out = 0;
  ASSERT_TRUE(q.TryPop(&out));
  ASSERT_TRUE(q.TryPop(&out));
  // Single-threaded, the head is settled, so the "upper bound" is exact —
  // the same condition the sharded runtime's phase discipline guarantees
  // when the high-watermark counters read it at post time.
  EXPECT_EQ(q.OccupancyFromProducer(), 1u);
  ASSERT_TRUE(q.TryPop(&out));
  EXPECT_EQ(q.OccupancyFromProducer(), 0u);
}

// The TSan target: one producer thread, one consumer thread, a ring small
// enough to hit full and empty constantly. The consumer checks the payload
// sequence, which fails (or races under TSan) if the release/acquire pair
// on the indices ever lets a slot be read before its write is published.
TEST(SpscQueueStressTest, CrossThreadFifoUnderContention) {
  constexpr uint64_t kCount = 50000;
  SpscQueue<uint64_t> q(16);
  std::atomic<uint64_t> popped{0};

  // Yield when blocked: on a single-core host a spinning side otherwise
  // burns its whole scheduler quantum while the other side can't run.
  std::thread consumer([&] {
    uint64_t expect = 0;
    uint64_t out = 0;
    while (expect < kCount) {
      if (q.TryPop(&out)) {
        ASSERT_EQ(out, expect);
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
    popped.store(expect, std::memory_order_relaxed);
  });
  for (uint64_t i = 0; i < kCount;) {
    if (q.TryPush(uint64_t{i})) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(popped.load(std::memory_order_relaxed), kCount);
  EXPECT_TRUE(q.EmptyApprox());
}

// Same shape but with an allocating payload, so TSan also watches the
// element construction/destruction happen on opposite threads.
TEST(SpscQueueStressTest, CrossThreadOwnershipHandoff) {
  constexpr int kCount = 20000;
  SpscQueue<std::unique_ptr<int>> q(8);
  int64_t sum = 0;

  std::thread consumer([&] {
    int seen = 0;
    std::unique_ptr<int> out;
    while (seen < kCount) {
      if (q.TryPop(&out)) {
        sum += *out;
        ++seen;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kCount;) {
    if (q.TryPush(std::make_unique<int>(i))) {
      ++i;
    } else {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(sum, int64_t{kCount} * (kCount - 1) / 2);
}

}  // namespace
}  // namespace espk
