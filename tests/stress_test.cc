// Stress and robustness: long runs under combined impairments, fuzzed
// input on every parser a speaker exposes to the network, scaling in
// channels and speakers, and determinism of the whole simulation.
#include <gtest/gtest.h>

#include "src/audio/analysis.h"
#include "src/base/prng.h"
#include "src/boot/netboot.h"
#include "src/boot/tar.h"
#include "src/core/system.h"
#include "src/kernel/vad.h"
#include "src/mgmt/agent.h"
#include "src/security/hors.h"
#include "src/security/tesla.h"

namespace espk {
namespace {

TEST(StressTest, LongRunUnderLossAndJitterStaysHealthy) {
  // Two minutes of CD audio through 5% loss and 4 ms jitter: the speaker
  // must keep playing the whole time with bounded damage and no drift.
  SystemOptions sys;
  sys.lan.loss_probability = 0.05;
  sys.lan.jitter = Milliseconds(4);
  EthernetSpeakerSystem system(sys);
  Channel* channel = *system.CreateChannel("music");
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  (void)*system.StartPlayer(channel, std::make_unique<MusicLikeGenerator>(1),
                            opts);
  system.sim()->RunUntil(Seconds(120));

  const SpeakerStats& stats = speaker->stats();
  // ~10.7 packets/s for 120 s, ~5% lost in the network.
  EXPECT_GT(stats.chunks_played, 1000u);
  EXPECT_EQ(stats.bad_packets, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  // The speaker keeps playing through to the end (no pipeline wedge).
  EXPECT_GT(speaker->output()->last_end(), Seconds(119));
  // Loss shows up as gaps, not as lateness spirals.
  EXPECT_LT(stats.late_drops, stats.chunks_played / 20);
}

TEST(StressTest, HealthMonitoringStaysQuietOverLongHealthyRun) {
  // A minute of clean playback with the full default SLO rule set armed:
  // nothing may fire, flap, or leave a postmortem — the alert layer has to
  // be silent on a healthy system or nobody will trust it when it pages.
  EthernetSpeakerSystem system;
  Channel* channel = *system.CreateChannel("music");
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  (void)*system.AddSpeaker(so, channel->group);
  HealthMonitor* health = system.EnableHealthMonitoring();
  PlayerAppOptions opts;
  opts.config = AudioConfig::CdQuality();
  (void)*system.StartPlayer(channel, std::make_unique<MusicLikeGenerator>(5),
                            opts);
  system.sim()->RunUntil(Seconds(60));

  EXPECT_EQ(health->engine()->fired_total(), 0u) << health->StatusText();
  EXPECT_EQ(health->engine()->resolved_total(), 0u);
  EXPECT_TRUE(health->engine()->ActiveAlerts().empty());
  EXPECT_TRUE(health->recorder()->postmortems().empty());
  // The sampler ticked the whole way through (10 Hz default).
  EXPECT_GT(health->sampler()->ticks(), 590u);
}

TEST(StressTest, SimulationIsDeterministic) {
  // Two identical runs produce byte-identical outcomes — the property
  // every experiment in EXPERIMENTS.md relies on.
  auto run = [] {
    SystemOptions sys;
    sys.lan.loss_probability = 0.1;
    sys.lan.jitter = Milliseconds(5);
    sys.lan.seed = 99;
    EthernetSpeakerSystem system(sys);
    Channel* channel = *system.CreateChannel("music");
    SpeakerOptions so;
    so.decode_speed_factor = 0.2;
    EthernetSpeaker* speaker = *system.AddSpeaker(so, channel->group);
    PlayerAppOptions opts;
    opts.config = AudioConfig::CdQuality();
    (void)*system.StartPlayer(channel,
                              std::make_unique<MusicLikeGenerator>(5), opts);
    system.sim()->RunUntil(Seconds(10));
    struct Outcome {
      uint64_t played;
      uint64_t late;
      uint64_t received;
      uint64_t wire_bytes;
      uint64_t events;
    };
    return std::tuple(speaker->stats().chunks_played,
                      speaker->stats().late_drops,
                      speaker->stats().packets_received,
                      system.lan()->stats().bytes_on_wire,
                      system.sim()->events_processed());
  };
  EXPECT_EQ(run(), run());
}

TEST(StressTest, SixteenChannelsSixteenSpeakers) {
  EthernetSpeakerSystem system;
  std::vector<EthernetSpeaker*> speakers;
  for (int i = 0; i < 16; ++i) {
    RebroadcasterOptions rb;
    rb.codec_override = CodecId::kRaw;  // Keep the test fast.
    Channel* channel =
        *system.CreateChannel("ch" + std::to_string(i), rb);
    PlayerAppOptions opts;
    opts.config = AudioConfig::PhoneQuality();
    opts.chunk_frames = 800;
    ASSERT_TRUE(system
                    .StartPlayer(channel,
                                 std::make_unique<SineGenerator>(
                                     200.0 + 50.0 * i),
                                 opts)
                    .ok());
    SpeakerOptions so;
    so.decode_speed_factor = 0.1;
    speakers.push_back(*system.AddSpeaker(so, channel->group));
  }
  system.sim()->RunUntil(Seconds(10));
  for (EthernetSpeaker* speaker : speakers) {
    EXPECT_TRUE(speaker->ready());
    EXPECT_GT(speaker->stats().chunks_played, 10u);
    EXPECT_EQ(speaker->stats().late_drops, 0u);
  }
}

TEST(StressTest, SpeakerSurvivesSeededDatagramFuzz) {
  // 5000 random datagrams straight into the speaker's receive path, plus
  // truncated/mutated copies of genuine packets. No crashes, no UB; every
  // datagram lands in exactly one stats bucket.
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto nic = segment.CreateNic();
  SpeakerOptions so;
  so.decode_speed_factor = 0.0;
  EthernetSpeaker speaker(&sim, nic.get(), so);
  ASSERT_TRUE(speaker.Tune(kFirstChannelGroup).ok());

  // Seed a genuine control + data packet to mutate.
  ControlPacket control;
  control.stream_id = 1;
  control.config = AudioConfig::PhoneQuality();
  control.codec = CodecId::kRaw;
  Bytes control_wire = SerializePacket(control);
  DataPacket data;
  data.stream_id = 1;
  data.seq = 1;
  data.frame_count = 80;
  data.payload = Bytes(80, 0x42);
  Bytes data_wire = SerializePacket(data);

  Prng prng(4242);
  for (int i = 0; i < 5000; ++i) {
    Datagram d;
    d.group = kFirstChannelGroup;
    // Payload slices are immutable; mutate a scratch Bytes and adopt it.
    Bytes scratch;
    switch (prng.NextBelow(4)) {
      case 0: {  // Pure noise.
        scratch.resize(prng.NextBelow(300) + 1);
        for (auto& b : scratch) {
          b = static_cast<uint8_t>(prng.NextU64());
        }
        break;
      }
      case 1: {  // Truncated genuine packet.
        const Bytes& src = prng.NextBool(0.5) ? control_wire : data_wire;
        scratch.assign(src.begin(),
                       src.begin() + static_cast<long>(
                                         prng.NextBelow(src.size()) + 1));
        break;
      }
      case 2: {  // Bit-flipped genuine packet.
        scratch = prng.NextBool(0.5) ? control_wire : data_wire;
        scratch[prng.NextBelow(scratch.size())] ^=
            static_cast<uint8_t>(1u << prng.NextBelow(8));
        break;
      }
      default: {  // Genuine packet (keeps the state machine moving).
        scratch = prng.NextBool(0.5) ? control_wire : data_wire;
        break;
      }
    }
    d.payload = std::move(scratch);
    speaker.HandleDatagram(d);
    if (i % 256 == 0) {
      sim.RunFor(Milliseconds(10));
    }
  }
  sim.Run();
  const SpeakerStats& stats = speaker.stats();
  EXPECT_EQ(stats.packets_received, 5000u);
  EXPECT_GT(stats.bad_packets, 1000u);  // Most mutations must be caught.
  SUCCEED();
}

TEST(StressTest, MgmtAgentSurvivesRequestFuzz) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto speaker_nic = segment.CreateNic();
  auto attacker_nic = segment.CreateNic();
  SpeakerOptions so;
  EthernetSpeaker speaker(&sim, speaker_nic.get(), so);
  SpeakerAgent agent(&sim, speaker_nic.get(), &speaker);

  Prng prng(777);
  for (int i = 0; i < 2000; ++i) {
    Bytes payload(prng.NextBelow(100) + 1);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(prng.NextU64());
    }
    (void)attacker_nic->SendMulticast(kMgmtGroup, payload);
  }
  sim.Run();
  SUCCEED();  // No crash; malformed requests were all discarded.
}

TEST(StressTest, NetbootServersSurviveFuzz) {
  Simulation sim;
  EthernetSegment segment(&sim, SegmentConfig{});
  auto server_nic = segment.CreateNic();
  auto dhcp_nic = segment.CreateNic();
  auto attacker_nic = segment.CreateNic();
  Bytes key = {1, 2, 3};
  RamdiskImage image = BuildStandardEsImage(DigestToBytes(Sha256::Hash(key)));
  BootServer boot_server(&sim, server_nic.get(), image, key);
  DhcpServer dhcp(&sim, dhcp_nic.get(), server_nic->node_id());

  Prng prng(888);
  for (int i = 0; i < 2000; ++i) {
    Bytes payload(prng.NextBelow(64) + 1);
    for (auto& b : payload) {
      b = static_cast<uint8_t>(prng.NextU64());
    }
    (void)attacker_nic->SendUnicast(server_nic->node_id(), payload);
    (void)attacker_nic->SendUnicast(dhcp_nic->node_id(), payload);
  }
  sim.Run();
  // And a genuine client still boots afterwards.
  auto client_nic = segment.CreateNic();
  NetbootClient client(&sim, client_nic.get());
  bool booted = false;
  client.Boot([&](Result<NetbootClient::BootResult> r) { booted = r.ok(); });
  sim.RunFor(Seconds(5));
  EXPECT_TRUE(booted);
}

TEST(StressTest, SecurityParsersSurviveFuzz) {
  Prng prng(999);
  for (int i = 0; i < 3000; ++i) {
    Bytes garbage(prng.NextBelow(200) + 1);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(prng.NextU64());
    }
    (void)HorsPublicKey::Deserialize(garbage);
    (void)HorsSignature::Deserialize(garbage);
    (void)TeslaTag::Deserialize(garbage);
    (void)VadRecord::Deserialize(garbage);
    (void)ExtractTar(garbage);
  }
  SUCCEED();
}

TEST(StressTest, RapidChannelHoppingStaysConsistent) {
  EthernetSpeakerSystem system;
  std::vector<Channel*> channels;
  for (int i = 0; i < 4; ++i) {
    RebroadcasterOptions rb;
    rb.codec_override = CodecId::kRaw;
    rb.control_interval = Milliseconds(200);
    channels.push_back(*system.CreateChannel("hop" + std::to_string(i), rb));
    PlayerAppOptions opts;
    opts.config = AudioConfig::PhoneQuality();
    opts.chunk_frames = 800;
    ASSERT_TRUE(system
                    .StartPlayer(channels.back(),
                                 std::make_unique<SineGenerator>(300.0 + i),
                                 opts)
                    .ok());
  }
  SpeakerOptions so;
  so.decode_speed_factor = 0.1;
  EthernetSpeaker* speaker = *system.AddSpeaker(so, channels[0]->group);
  Prng prng(1234);
  for (int hop = 0; hop < 40; ++hop) {
    system.sim()->RunFor(Milliseconds(500));
    Channel* target = channels[prng.NextBelow(4)];
    ASSERT_TRUE(speaker->Tune(target->group).ok());
  }
  // Each hop drops the old subscription's in-flight pipeline obligations
  // (a chunk queued for the previous channel must not play into the new
  // one), so sustained playback only accumulates once the hopping stops:
  // give the final channel a long settle window at ~2 data packets/sec.
  system.sim()->RunFor(Seconds(8));
  EXPECT_TRUE(speaker->ready());
  EXPECT_GT(speaker->stats().chunks_played, 10u);
  EXPECT_EQ(speaker->stats().bad_packets, 0u);
}

}  // namespace
}  // namespace espk
