// TimerWheel and EventMap (src/sim): the wheel must agree with a plain
// (time, seq) ordering oracle on every pop — including same-instant FIFO —
// because both the simulation's event contract and the sharded runtime's
// bit-identity guarantee rest on it. The EventMap must behave exactly like
// the std::unordered_map it replaced through arbitrary insert/erase churn.
#include "src/sim/timer_wheel.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/prng.h"
#include "src/sim/event_map.h"
#include "src/sim/simulation.h"

namespace espk {
namespace {

bool OracleBefore(const TimerEntry& a, const TimerEntry& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

// Drains the wheel completely and checks the pop sequence equals the
// expected entries sorted by (time, seq).
void ExpectDrainsInOrder(TimerWheel* wheel, std::vector<TimerEntry> expected) {
  std::sort(expected.begin(), expected.end(), OracleBefore);
  TimerEntry out;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(wheel->PopEarliest(INT64_MAX, &out)) << "drained early at " << i;
    EXPECT_EQ(out.time, expected[i].time) << "pop " << i;
    EXPECT_EQ(out.seq, expected[i].seq) << "pop " << i;
    EXPECT_EQ(out.id, expected[i].id) << "pop " << i;
  }
  EXPECT_FALSE(wheel->PopEarliest(INT64_MAX, &out));
  EXPECT_TRUE(wheel->empty());
}

TEST(TimerWheelTest, PopsInTimeOrderAcrossLevels) {
  TimerWheel wheel;
  // Horizons spanning several wheel levels: sub-tick, a few ticks, and far
  // enough out to file at level 3+ and cascade back down.
  std::vector<TimerEntry> entries;
  uint64_t seq = 0;
  for (SimTime t : {int64_t{0}, int64_t{500}, Microseconds(3),
                    Microseconds(70), Milliseconds(5), Milliseconds(300),
                    Seconds(2), Seconds(90)}) {
    entries.push_back({t, seq, seq + 1});
    ++seq;
  }
  // Insert in reverse so filing order never matches pop order by accident.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    TimerEntry e = *it;
    e.seq = seq++;  // Fresh seqs in insertion order; times still reversed.
    wheel.Schedule(e);
  }
  TimerEntry out;
  SimTime last = -1;
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
    EXPECT_GE(out.time, last);
    last = out.time;
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheelTest, SameInstantStaysFifo) {
  TimerWheel wheel;
  std::vector<TimerEntry> entries;
  // A fleet's worth of same-instant timers (one decode per speaker), plus
  // same-tick-different-time neighbors that must still order by time.
  const SimTime t = Milliseconds(7);
  for (uint64_t i = 0; i < 500; ++i) {
    entries.push_back({t, i, i + 1});
  }
  entries.push_back({t + 1, 500, 501});
  entries.push_back({t - 1, 501, 502});
  for (const TimerEntry& e : entries) {
    wheel.Schedule(e);
  }
  ExpectDrainsInOrder(&wheel, entries);
}

TEST(TimerWheelTest, LimitBoundsPopsAndLeavesRestIntact) {
  TimerWheel wheel;
  wheel.Schedule({Milliseconds(1), 0, 1});
  wheel.Schedule({Milliseconds(10), 1, 2});
  TimerEntry out;
  ASSERT_TRUE(wheel.PopEarliest(Milliseconds(5), &out));
  EXPECT_EQ(out.id, 1u);
  EXPECT_FALSE(wheel.PopEarliest(Milliseconds(5), &out));
  EXPECT_EQ(wheel.size(), 1u);
  ASSERT_TRUE(wheel.PeekEarliest(&out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(wheel.PopEarliest(Milliseconds(10), &out));
  EXPECT_EQ(out.id, 2u);
}

TEST(TimerWheelTest, EntriesAtOrBeforeCursorJoinTheDueHeap) {
  TimerWheel wheel;
  wheel.Schedule({Milliseconds(5), 0, 1});
  TimerEntry out;
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));  // Cursor is now ~5 ms.
  // Scheduling at a time the cursor has already passed must still pop (the
  // simulation clamps times to now, which is at most the cursor instant).
  wheel.Schedule({Milliseconds(2), 1, 2});
  wheel.Schedule({Milliseconds(3), 2, 3});
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
  EXPECT_EQ(out.id, 2u);
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
  EXPECT_EQ(out.id, 3u);
}

TEST(TimerWheelTest, CascadeCounterCountsRefilingWork) {
  TimerWheel wheel;
  EXPECT_EQ(wheel.cascades(), 0u);
  // A near-term timer files at level 0 and pops without any re-filing.
  wheel.Schedule({100, 0, 1});
  TimerEntry out;
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
  EXPECT_EQ(wheel.cascades(), 0u);
  // A far-future timer files high and descends a level at a time as the
  // cursor approaches — each descent is one cascade.
  wheel.Schedule({Seconds(90), 1, 2});
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
  EXPECT_EQ(out.id, 2u);
  const uint64_t far_cascades = wheel.cascades();
  EXPECT_GT(far_cascades, 0u);
  // The counter is cumulative across pops (runtime telemetry reads it as a
  // monotone counter).
  wheel.Schedule({Seconds(180), 2, 3});
  ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
  EXPECT_GT(wheel.cascades(), far_cascades);
}

TEST(TimerWheelTest, RandomizedAgainstSortOracle) {
  Prng prng(20260808);
  for (int round = 0; round < 20; ++round) {
    TimerWheel wheel;
    std::vector<TimerEntry> entries;
    uint64_t seq = 0;
    // Mixed horizons: clustered short timers with a heavy same-instant tail
    // plus occasional far-future outliers — the fleet workload's shape.
    const size_t n = 200 + prng.NextBelow(300);
    SimTime base = static_cast<SimTime>(prng.NextBelow(Seconds(1)));
    for (size_t i = 0; i < n; ++i) {
      SimTime t = base;
      switch (prng.NextBelow(4)) {
        case 0: t += static_cast<SimTime>(prng.NextBelow(Microseconds(2))); break;
        case 1: t += static_cast<SimTime>(prng.NextBelow(Milliseconds(1))); break;
        case 2: t += static_cast<SimTime>(prng.NextBelow(Seconds(1))); break;
        default: t += static_cast<SimTime>(prng.NextBelow(Seconds(200))); break;
      }
      entries.push_back({t, seq, seq + 1});
      ++seq;
    }
    for (const TimerEntry& e : entries) {
      wheel.Schedule(e);
    }
    ExpectDrainsInOrder(&wheel, entries);
  }
}

TEST(TimerWheelTest, InterleavedScheduleAndPopAgainstOracle) {
  // Schedule/pop interleaving with the cursor advancing between batches —
  // the pattern an event loop actually produces.
  Prng prng(7);
  TimerWheel wheel;
  std::vector<TimerEntry> pending;
  SimTime now = 0;
  uint64_t seq = 0;
  for (int step = 0; step < 400; ++step) {
    const size_t burst = 1 + prng.NextBelow(8);
    for (size_t i = 0; i < burst; ++i) {
      SimTime t = now + static_cast<SimTime>(prng.NextBelow(Milliseconds(20)));
      TimerEntry e{t, seq, seq + 1};
      ++seq;
      wheel.Schedule(e);
      pending.push_back(e);
    }
    const size_t pops = prng.NextBelow(burst + 2);
    for (size_t i = 0; i < pops && !pending.empty(); ++i) {
      auto next = std::min_element(pending.begin(), pending.end(), OracleBefore);
      TimerEntry out;
      ASSERT_TRUE(wheel.PopEarliest(INT64_MAX, &out));
      EXPECT_EQ(out.id, next->id);
      now = std::max(now, out.time);
      pending.erase(next);
    }
  }
  ExpectDrainsInOrder(&wheel, pending);
}

// Both queue engines must produce the identical execution: same callback
// order, same clock, same Cancel semantics. This is the bit-identity
// foundation everything above the simulation relies on.
TEST(SimulationEngineTest, WheelAndHeapExecuteIdentically) {
  Prng seeds(99);
  for (int round = 0; round < 10; ++round) {
    const uint64_t seed = seeds.NextBelow(1u << 30);
    auto run = [seed](QueueEngine engine) {
      Simulation sim(engine);
      Prng prng(seed);
      std::vector<std::pair<uint64_t, SimTime>> executed;
      std::vector<Simulation::EventHandle> handles;
      uint64_t label = 0;
      std::function<void()> burst = [&] {
        const size_t n = prng.NextBelow(5);
        for (size_t i = 0; i < n; ++i) {
          const uint64_t my = ++label;
          SimTime at =
              sim.now() + static_cast<SimTime>(prng.NextBelow(Milliseconds(3)));
          handles.push_back(sim.ScheduleAt(at, [&, my] {
            executed.push_back({my, sim.now()});
            if (executed.size() < 600) {
              burst();
            }
          }));
        }
        // Randomly cancel one known handle — possibly already run.
        if (!handles.empty() && prng.NextBelow(3) == 0) {
          sim.Cancel(handles[prng.NextBelow(handles.size())]);
        }
      };
      for (int i = 0; i < 5; ++i) {
        burst();
      }
      sim.Run();
      return executed;
    };
    auto wheel_trace = run(QueueEngine::kTimerWheel);
    auto heap_trace = run(QueueEngine::kBinaryHeap);
    ASSERT_EQ(wheel_trace, heap_trace) << "engines diverged, seed " << seed;
  }
}

TEST(EventMapTest, InsertTakeEraseBasics) {
  EventMap map;
  int fired = 0;
  map.Insert(1, [&] { fired = 1; });
  map.Insert(2, [&] { fired = 2; });
  EXPECT_EQ(map.size(), 2u);
  EXPECT_TRUE(map.Contains(1));
  EXPECT_FALSE(map.Contains(3));

  EventMap::Callback cb;
  ASSERT_TRUE(map.Take(1, &cb));
  cb();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(map.Contains(1));
  EXPECT_FALSE(map.Take(1, &cb));  // Already taken.

  EXPECT_TRUE(map.Erase(2));
  EXPECT_FALSE(map.Erase(2));
  EXPECT_TRUE(map.empty());
}

TEST(EventMapTest, GrowsAndShrinksAcrossBursts) {
  EventMap map;
  const size_t initial_capacity = map.capacity();
  for (uint64_t id = 1; id <= 10000; ++id) {
    map.Insert(id, [] {});
  }
  EXPECT_EQ(map.size(), 10000u);
  EXPECT_GT(map.capacity(), initial_capacity);
  for (uint64_t id = 1; id <= 10000; ++id) {
    EXPECT_TRUE(map.Erase(id));
  }
  EXPECT_TRUE(map.empty());
  // A one-off spike must not pin the high-water capacity.
  EXPECT_EQ(map.capacity(), initial_capacity);
}

TEST(EventMapTest, RandomizedChurnAgainstUnorderedMapOracle) {
  Prng prng(31337);
  EventMap map;
  std::unordered_map<uint64_t, int> oracle;
  uint64_t next_id = 1;
  int executed_sum = 0;
  int oracle_sum = 0;
  for (int step = 0; step < 50000; ++step) {
    const uint64_t op = prng.NextBelow(10);
    if (op < 5 || oracle.empty()) {
      const uint64_t id = next_id++;
      const int value = static_cast<int>(prng.NextBelow(1000));
      map.Insert(id, [&executed_sum, value] { executed_sum += value; });
      oracle[id] = value;
    } else {
      // Pick an id biased toward recent ones (the event queue's pattern:
      // mostly near-future events pop or cancel soon after scheduling).
      uint64_t id = 1 + prng.NextBelow(next_id - 1);
      const bool present = oracle.count(id) > 0;
      ASSERT_EQ(map.Contains(id), present);
      if (op < 8) {
        EventMap::Callback cb;
        ASSERT_EQ(map.Take(id, &cb), present);
        if (present) {
          cb();
          oracle_sum += oracle[id];
          oracle.erase(id);
        }
      } else {
        ASSERT_EQ(map.Erase(id), present);
        oracle.erase(id);
      }
    }
    ASSERT_EQ(map.size(), oracle.size());
  }
  EXPECT_EQ(executed_sum, oracle_sum);
  // Everything left is still reachable (backward-shift deletion never
  // strands a probe chain).
  for (const auto& [id, value] : oracle) {
    ASSERT_TRUE(map.Contains(id)) << id;
  }
}

}  // namespace
}  // namespace espk
